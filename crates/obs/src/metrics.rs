//! The metrics registry: named counters and log-scale histograms with a
//! snapshot/diff API.
//!
//! Counter and histogram names are `&'static str` so registering is
//! allocation-free on the hot path after the first observation of each
//! name. The standard event-to-metric mapping lives in
//! [`Metrics::observe`], so every sink that feeds a registry produces the
//! same counters — this is what lets obs counters cross-check exactly
//! against the engines' own `NetStats`/`PacketCounts` accounting.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Well-known counter names produced by [`Metrics::observe`].
pub mod names {
    /// Packets injected into the mesh.
    pub const PACKETS_SENT: &str = "packets_sent";
    /// Application payload bytes injected (matches `NetStats::payload_bytes`).
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Payload plus framing bytes injected (matches `NetStats::wire_bytes`).
    pub const WIRE_BYTES_SENT: &str = "wire_bytes_sent";
    /// Packets delivered to their destination.
    pub const PACKETS_DELIVERED: &str = "packets_delivered";
    /// Payload bytes delivered.
    pub const BYTES_DELIVERED: &str = "bytes_delivered";
    /// Header stalls on busy channels.
    pub const CONTENTION_EVENTS: &str = "contention_events";
    /// Total stall time (matches `NetStats::contention_ns`).
    pub const CONTENTION_NS: &str = "contention_ns";
    /// Routes committed.
    pub const WIRES_ROUTED: &str = "wires_routed";
    /// Cells covered by committed routes.
    pub const ROUTE_CELLS: &str = "route_cells";
    /// Routes ripped up.
    pub const RIP_UPS: &str = "rip_ups";
    /// Cells uncovered by rip-ups.
    pub const RIPPED_CELLS: &str = "ripped_cells";
    /// Cache line fetches.
    pub const CACHE_MISSES: &str = "cache_misses";
    /// Bytes moved by line fetches.
    pub const CACHE_MISS_BYTES: &str = "cache_miss_bytes";
    /// Copies invalidated in other caches.
    pub const INVALIDATIONS: &str = "invalidations";
    /// Individual bus transactions.
    pub const BUS_TRANSFERS: &str = "bus_transfers";
    /// Bytes moved on the bus (matches `TrafficStats::total_bytes`).
    pub const BUS_BYTES: &str = "bus_bytes";
    /// Requests issued to memory-system service points (bus, directory
    /// home nodes, LLC home tiles).
    pub const MEM_REQUESTS: &str = "mem_requests";
    /// Memory-system requests flagged critical (rip-up/commit stores).
    pub const MEM_CRITICAL_REQUESTS: &str = "mem_critical_requests";
    /// Payload bytes moved by memory-system requests.
    pub const MEM_REQUEST_BYTES: &str = "mem_request_bytes";
    /// Phases begun.
    pub const PHASES_BEGUN: &str = "phases_begun";
    /// Phases ended.
    pub const PHASES_ENDED: &str = "phases_ended";
    /// Candidate routes examined by the evaluation kernel.
    pub const KERNEL_CANDIDATES: &str = "kernel_candidates";
    /// Span queries served from a valid prefix-sum cache line.
    pub const PREFIX_CACHE_HITS: &str = "prefix_cache_hits";
    /// Prefix-sum cache lines built cold (never materialized before).
    pub const PREFIX_CACHE_REBUILDS: &str = "prefix_cache_rebuilds";
    /// Prefix-sum cache lines incrementally patched past their watermark.
    pub const PREFIX_CACHE_PATCHES: &str = "prefix_cache_patches";
    /// Watermark clamps caused by cost-array writes.
    pub const PREFIX_CACHE_INVALIDATIONS: &str = "prefix_cache_invalidations";
    /// Row-maximum rescans forced by a write lowering the maximum.
    pub const PREFIX_CACHE_FALLBACKS: &str = "prefix_cache_fallbacks";
    /// Route evaluations that took the per-cell span fallback.
    pub const PERCELL_EVALS: &str = "percell_evals";
    /// Runs that fell back to per-cell spans at least once (one per
    /// `PercellFallback` event).
    pub const PERCELL_FALLBACKS: &str = "percell_fallbacks";
    /// Unsynchronized conflicting access pairs confirmed by the analyser.
    pub const RACES_DETECTED: &str = "races_detected";
    /// Detected races classified as benign (same route either way).
    pub const BENIGN_RACES: &str = "benign_races";
    /// Detected races classified as quality-affecting.
    pub const QUALITY_RACES: &str = "quality_races";
    /// Replica-vs-truth audits performed by message-passing nodes.
    pub const REPLICA_AUDITS: &str = "replica_audits";
    /// Diverged replica cells summed across audits.
    pub const STALE_CELLS: &str = "stale_cells";
    /// Faults of any kind injected by the mesh fault layer.
    pub const FAULTS_INJECTED: &str = "faults_injected";
    /// Deliveries silently discarded (matches `NetStats::packets_dropped`).
    pub const PACKETS_DROPPED: &str = "packets_dropped";
    /// Extra envelope copies injected (matches `NetStats::packets_duplicated`).
    pub const PACKETS_DUPLICATED: &str = "packets_duplicated";
    /// Deliveries pushed back by injected latency.
    pub const PACKETS_DELAYED: &str = "packets_delayed";
    /// Deliveries held long enough to be overtaken.
    pub const PACKETS_REORDERED: &str = "packets_reordered";
    /// Frames re-sent by the reliability layer.
    pub const PACKETS_RETRANSMITTED: &str = "packets_retransmitted";
    /// Cumulative acknowledgements sent by the reliability layer.
    pub const ACKS_SENT: &str = "acks_sent";
    /// Wires the watchdog routed locally after a degraded network run.
    pub const WATCHDOG_RECOVERIES: &str = "watchdog_recoveries";
    /// Routing jobs admitted into the service queue.
    pub const JOBS_ENQUEUED: &str = "jobs_enqueued";
    /// Routing jobs handed to a worker.
    pub const JOBS_DISPATCHED: &str = "jobs_dispatched";
    /// Routing jobs that finished service.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Queued jobs dropped by the shed-oldest backpressure policy.
    pub const JOBS_SHED: &str = "jobs_shed";
    /// Arrivals turned away by the reject backpressure policy.
    pub const JOBS_REJECTED: &str = "jobs_rejected";
    /// Node crashes injected by the node-fault layer (matches
    /// `NetStats::node_crashes`).
    pub const NODE_CRASHES: &str = "node_crashes";
    /// Crashed nodes that came back up (matches `NetStats::node_restarts`).
    pub const NODE_RESTARTS: &str = "node_restarts";
    /// Checkpoints taken by message-passing nodes.
    pub const CHECKPOINTS_TAKEN: &str = "checkpoints_taken";
    /// Serialized checkpoint bytes charged to the network.
    pub const CHECKPOINT_BYTES: &str = "checkpoint_bytes";
    /// Wires reassigned from dead nodes to live adopters.
    pub const WIRES_REASSIGNED: &str = "wires_reassigned";
    /// Coordinator failovers (a worker assumed coordinator duty).
    pub const COORDINATOR_FAILOVERS: &str = "coordinator_failovers";
    /// Jobs retried by the service after a degraded engine run.
    pub const JOBS_RETRIED: &str = "jobs_retried";
    /// Circuit-breaker trips (a job class was quarantined).
    pub const BREAKER_TRIPS: &str = "breaker_trips";
}

/// Well-known histogram names produced by [`Metrics::observe`].
pub mod hists {
    /// Payload size of sent packets (bytes).
    pub const PACKET_SIZE: &str = "packet_size_bytes";
    /// Mesh distance of sent packets (hops).
    pub const HOP_DISTANCE: &str = "hop_distance";
    /// Injection-to-arrival latency of delivered packets (ns).
    pub const LATENCY_NS: &str = "latency_ns";
    /// Receiver inbox depth at delivery.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Channel stall durations (ns).
    pub const STALL_NS: &str = "stall_ns";
    /// Cells per committed route.
    pub const ROUTE_CELLS: &str = "route_cells";
    /// Diverged cells per replica audit.
    pub const STALE_CELLS: &str = "stale_cells";
    /// Mean staleness age per replica audit (ns).
    pub const STALE_AGE_NS: &str = "stale_age_ns";
    /// Per-job queueing delay: arrival to dispatch (virtual ms).
    pub const QUEUE_WAIT_MS: &str = "queue_wait_ms";
    /// Per-job service latency: dispatch to completion (virtual ms).
    pub const SERVICE_MS: &str = "service_ms";
    /// Service queue depth observed at each admission.
    pub const JOB_QUEUE_DEPTH: &str = "job_queue_depth";
    /// Payload bytes per memory-system request.
    pub const MEM_REQUEST_BYTES: &str = "mem_request_bytes";
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and `u64::MAX` lands in bucket 64.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// The bucket index of `v`: 0 for 0, otherwise `⌊log₂ v⌋ + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The smallest value bucket `i` can hold.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The largest value bucket `i` can hold.
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket where the cumulative count reaches
    /// `q · count` — a log₂-resolution quantile estimate. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise difference `self − earlier` (counts saturate at 0).
    /// `min`/`max` are taken from `self`: the bucket layout cannot
    /// recover the extremes of just the new samples.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = self.clone();
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

/// A registry of named counters and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name` (saturating).
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Applies the standard event-to-metric mapping for `event`.
    pub fn observe(&mut self, event: &Event) {
        match event.kind {
            EventKind::PacketSent { payload_bytes, wire_bytes, hops, .. } => {
                self.add(names::PACKETS_SENT, 1);
                self.add(names::BYTES_SENT, payload_bytes as u64);
                self.add(names::WIRE_BYTES_SENT, wire_bytes as u64);
                self.record(hists::PACKET_SIZE, payload_bytes as u64);
                self.record(hists::HOP_DISTANCE, hops as u64);
            }
            EventKind::PacketDelivered { payload_bytes, latency_ns, queue_depth, .. } => {
                self.add(names::PACKETS_DELIVERED, 1);
                self.add(names::BYTES_DELIVERED, payload_bytes as u64);
                self.record(hists::LATENCY_NS, latency_ns);
                self.record(hists::QUEUE_DEPTH, queue_depth as u64);
            }
            EventKind::ChannelContended { stall_ns, .. } => {
                self.add(names::CONTENTION_EVENTS, 1);
                self.add(names::CONTENTION_NS, stall_ns);
                self.record(hists::STALL_NS, stall_ns);
            }
            EventKind::WireRouted { cells, .. } => {
                self.add(names::WIRES_ROUTED, 1);
                self.add(names::ROUTE_CELLS, cells as u64);
                self.record(hists::ROUTE_CELLS, cells as u64);
            }
            EventKind::RipUp { cells, .. } => {
                self.add(names::RIP_UPS, 1);
                self.add(names::RIPPED_CELLS, cells as u64);
            }
            EventKind::CacheMiss { line_bytes, .. } => {
                self.add(names::CACHE_MISSES, 1);
                self.add(names::CACHE_MISS_BYTES, line_bytes as u64);
            }
            EventKind::Invalidation { copies, .. } => {
                self.add(names::INVALIDATIONS, copies as u64);
            }
            EventKind::BusTransfer { bytes } => {
                self.add(names::BUS_TRANSFERS, 1);
                self.add(names::BUS_BYTES, bytes as u64);
            }
            EventKind::MemRequest { bytes, critical, .. } => {
                self.add(names::MEM_REQUESTS, 1);
                if critical {
                    self.add(names::MEM_CRITICAL_REQUESTS, 1);
                }
                self.add(names::MEM_REQUEST_BYTES, bytes as u64);
                self.record(hists::MEM_REQUEST_BYTES, bytes as u64);
            }
            EventKind::PhaseBegin { .. } => self.add(names::PHASES_BEGUN, 1),
            EventKind::PhaseEnd { .. } => self.add(names::PHASES_ENDED, 1),
            EventKind::KernelStats {
                candidates,
                prefix_hits,
                prefix_rebuilds,
                prefix_patches,
                prefix_invalidations,
                prefix_fallbacks,
                percell_evals,
            } => {
                self.add(names::KERNEL_CANDIDATES, candidates);
                self.add(names::PREFIX_CACHE_HITS, prefix_hits);
                self.add(names::PREFIX_CACHE_REBUILDS, prefix_rebuilds);
                self.add(names::PREFIX_CACHE_PATCHES, prefix_patches);
                self.add(names::PREFIX_CACHE_INVALIDATIONS, prefix_invalidations);
                self.add(names::PREFIX_CACHE_FALLBACKS, prefix_fallbacks);
                self.add(names::PERCELL_EVALS, percell_evals);
            }
            EventKind::PercellFallback { .. } => {
                self.add(names::PERCELL_FALLBACKS, 1);
            }
            EventKind::RaceDetected { benign, .. } => {
                self.add(names::RACES_DETECTED, 1);
                self.add(if benign { names::BENIGN_RACES } else { names::QUALITY_RACES }, 1);
            }
            EventKind::ReplicaAudit { diverged_cells, mean_age_ns, .. } => {
                self.add(names::REPLICA_AUDITS, 1);
                self.add(names::STALE_CELLS, diverged_cells as u64);
                self.record(hists::STALE_CELLS, diverged_cells as u64);
                self.record(hists::STALE_AGE_NS, mean_age_ns);
            }
            EventKind::FaultInjected { fault, .. } => {
                self.add(names::FAULTS_INJECTED, 1);
                self.add(
                    match fault {
                        crate::event::FaultKind::Drop => names::PACKETS_DROPPED,
                        crate::event::FaultKind::Duplicate => names::PACKETS_DUPLICATED,
                        crate::event::FaultKind::Delay => names::PACKETS_DELAYED,
                        crate::event::FaultKind::Reorder => names::PACKETS_REORDERED,
                    },
                    1,
                );
            }
            EventKind::PacketRetransmitted { .. } => {
                self.add(names::PACKETS_RETRANSMITTED, 1);
            }
            EventKind::AckSent { .. } => {
                self.add(names::ACKS_SENT, 1);
            }
            EventKind::WatchdogRecovery { .. } => {
                self.add(names::WATCHDOG_RECOVERIES, 1);
            }
            EventKind::JobEnqueued { queue_depth, .. } => {
                self.add(names::JOBS_ENQUEUED, 1);
                self.record(hists::JOB_QUEUE_DEPTH, queue_depth as u64);
            }
            EventKind::JobDispatched { queued_ms, .. } => {
                self.add(names::JOBS_DISPATCHED, 1);
                self.record(hists::QUEUE_WAIT_MS, queued_ms);
            }
            EventKind::JobCompleted { service_ms, .. } => {
                self.add(names::JOBS_COMPLETED, 1);
                self.record(hists::SERVICE_MS, service_ms);
            }
            EventKind::JobShed { .. } => {
                self.add(names::JOBS_SHED, 1);
            }
            EventKind::JobRejected { .. } => {
                self.add(names::JOBS_REJECTED, 1);
            }
            EventKind::NodeCrashed { .. } => {
                self.add(names::NODE_CRASHES, 1);
            }
            EventKind::NodeRestarted { .. } => {
                self.add(names::NODE_RESTARTS, 1);
            }
            EventKind::CheckpointTaken { bytes } => {
                self.add(names::CHECKPOINTS_TAKEN, 1);
                self.add(names::CHECKPOINT_BYTES, bytes as u64);
            }
            EventKind::WireReassigned { .. } => {
                self.add(names::WIRES_REASSIGNED, 1);
            }
            EventKind::CoordinatorFailover { .. } => {
                self.add(names::COORDINATOR_FAILOVERS, 1);
            }
            EventKind::JobRetried { .. } => {
                self.add(names::JOBS_RETRIED, 1);
            }
            EventKind::BreakerTripped { .. } => {
                self.add(names::BREAKER_TRIPS, 1);
            }
        }
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { counters: self.counters.clone(), histograms: self.histograms.clone() }
    }
}

/// An immutable snapshot of a [`Metrics`] registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values at snapshot time.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram state at snapshot time.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// What happened between `earlier` and `self`: counters and histogram
    /// buckets subtracted (saturating). Names only present in `earlier`
    /// keep a 0 entry.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (&name, &v) in &self.counters {
            counters.insert(name, v.saturating_sub(earlier.counter(name)));
        }
        for &name in earlier.counters.keys() {
            counters.entry(name).or_insert(0);
        }
        let mut histograms = BTreeMap::new();
        for (&name, h) in &self.histograms {
            match earlier.histograms.get(name) {
                Some(e) => histograms.insert(name, h.diff(e)),
                None => histograms.insert(name, h.clone()),
            };
        }
        MetricsSnapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        assert_eq!((bucket_lo(0), bucket_hi(0)), (0, 0));
        assert_eq!((bucket_lo(1), bucket_hi(1)), (1, 1));
        assert_eq!((bucket_lo(2), bucket_hi(2)), (2, 3));
        assert_eq!((bucket_lo(10), bucket_hi(10)), (512, 1023));
        assert_eq!(bucket_hi(64), u64::MAX);
        for i in 1..64 {
            assert_eq!(bucket_lo(i + 1), bucket_hi(i) + 1, "gap after bucket {i}");
        }
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v && v <= bucket_hi(i), "value {v} bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), None);
        for v in [3u64, 9, 0, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1012);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 253.0).abs() < 1e-9);
        assert_eq!(h.buckets()[bucket_index(0)], 1);
        assert_eq!(h.buckets()[bucket_index(3)], 1);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 99);
        // p50 of 0..100 lies in the bucket containing ~50.
        let p50 = h.quantile(0.5);
        assert!((32..=127).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn counters_saturate() {
        let mut m = Metrics::new();
        m.add("x", u64::MAX);
        m.add("x", 10);
        assert_eq!(m.counter("x"), u64::MAX);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn snapshot_diff_isolates_the_delta() {
        let mut m = Metrics::new();
        m.add("a", 5);
        m.record("h", 7);
        let before = m.snapshot();
        m.add("a", 3);
        m.add("b", 2);
        m.record("h", 9);
        let after = m.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("a"), 3);
        assert_eq!(d.counter("b"), 2);
        let h = &d.histograms["h"];
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 9);
    }

    #[test]
    fn observe_maps_packet_events_to_byte_counters() {
        let mut m = Metrics::new();
        let ev = Event {
            at_ns: 10,
            node: 1,
            kind: EventKind::PacketSent { dst: 2, payload_bytes: 40, wire_bytes: 44, hops: 3 },
        };
        m.observe(&ev);
        m.observe(&ev);
        assert_eq!(m.counter(names::PACKETS_SENT), 2);
        assert_eq!(m.counter(names::BYTES_SENT), 80);
        assert_eq!(m.counter(names::WIRE_BYTES_SENT), 88);
        assert_eq!(m.histogram(hists::HOP_DISTANCE).unwrap().count(), 2);
    }

    #[test]
    fn observe_maps_analysis_events() {
        let mut m = Metrics::new();
        let race = |benign| Event {
            at_ns: 0,
            node: 0,
            kind: EventKind::RaceDetected { addr: 8, wire: 2, benign },
        };
        m.observe(&race(true));
        m.observe(&race(true));
        m.observe(&race(false));
        assert_eq!(m.counter(names::RACES_DETECTED), 3);
        assert_eq!(m.counter(names::BENIGN_RACES), 2);
        assert_eq!(m.counter(names::QUALITY_RACES), 1);
        m.observe(&Event {
            at_ns: 5,
            node: 1,
            kind: EventKind::ReplicaAudit { diverged_cells: 7, max_divergence: 3, mean_age_ns: 40 },
        });
        assert_eq!(m.counter(names::REPLICA_AUDITS), 1);
        assert_eq!(m.counter(names::STALE_CELLS), 7);
        assert_eq!(m.histogram(hists::STALE_AGE_NS).unwrap().sum(), 40);
    }
}
