//! Event sinks: where instrumented layers send their events.
//!
//! The contract every instrumented layer follows is:
//!
//! ```ignore
//! if obs_on {            // cached `sink.enabled()` — one predictable branch
//!     sink.record(ev);   // only then is the event even constructed
//! }
//! ```
//!
//! so a [`NullSink`] costs one never-taken branch per instrumentation
//! point and zero allocations — the zero-cost-when-disabled guarantee
//! the `table1` benchmarks rely on.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::event::Event;
use crate::metrics::{Metrics, MetricsSnapshot};

/// Receives events from instrumented layers.
///
/// `Send` so boxed sinks can ride inside engines that move across
/// threads; thread-*shared* recording goes through [`SharedSink`].
pub trait Sink: Send {
    /// Whether recording is on. Layers cache this once and skip event
    /// construction entirely when false.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: Event);
}

/// The disabled sink: reports `enabled() == false` and drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: Event) {}
}

/// Default event capacity of a [`RingBufferSink`] (~32 MB of events).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A bounded in-memory sink: keeps the most recent `capacity` events in
/// arrival order and feeds every event (kept or not) into a [`Metrics`]
/// registry, so counters stay exact even when the ring wraps.
#[derive(Clone, Debug)]
pub struct RingBufferSink {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    metrics: Metrics,
}

impl Default for RingBufferSink {
    fn default() -> Self {
        RingBufferSink::new()
    }
}

impl RingBufferSink {
    /// Creates a sink with the [default capacity](DEFAULT_CAPACITY).
    pub fn new() -> Self {
        RingBufferSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a sink keeping at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink { events: VecDeque::new(), capacity, dropped: 0, metrics: Metrics::new() }
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().copied().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The metrics registry fed by every recorded event.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl Sink for RingBufferSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.metrics.observe(&event);
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A thread-safe, cheaply clonable handle to a shared [`RingBufferSink`].
///
/// Every clone records into the same buffer; the real threaded executor
/// hands one clone to each worker thread, and single-threaded engines
/// use it so the caller can keep a handle and read the results after the
/// engine consumed its own clone.
#[derive(Clone, Debug, Default)]
pub struct SharedSink {
    inner: Arc<Mutex<RingBufferSink>>,
}

impl SharedSink {
    /// Creates a shared sink with the default capacity.
    pub fn new() -> Self {
        SharedSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a shared sink keeping at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedSink { inner: Arc::new(Mutex::new(RingBufferSink::with_capacity(capacity))) }
    }

    /// Locks the underlying buffer for inspection.
    pub fn lock(&self) -> MutexGuard<'_, RingBufferSink> {
        self.inner.lock()
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot_events(&self) -> Vec<Event> {
        self.inner.lock().to_vec()
    }

    /// Snapshot of the metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().metrics().snapshot()
    }
}

impl Sink for SharedSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.inner.lock().record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::metrics::names;

    fn ev(at_ns: u64, bytes: u32) -> Event {
        Event {
            at_ns,
            node: 0,
            kind: EventKind::PacketSent {
                dst: 1,
                payload_bytes: bytes,
                wire_bytes: bytes + 4,
                hops: 1,
            },
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(0, 1)); // no-op
    }

    #[test]
    fn ring_preserves_arrival_order() {
        let mut s = RingBufferSink::with_capacity(10);
        for i in 0..5 {
            s.record(ev(i, i as u32));
        }
        let times: Vec<u64> = s.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_exact_metrics() {
        let mut s = RingBufferSink::with_capacity(3);
        for i in 0..5 {
            s.record(ev(i, 10));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.iter().next().unwrap().at_ns, 2, "oldest evicted first");
        // Metrics saw all five events despite the eviction.
        assert_eq!(s.metrics().counter(names::PACKETS_SENT), 5);
        assert_eq!(s.metrics().counter(names::BYTES_SENT), 50);
    }

    #[test]
    fn shared_sink_clones_share_the_buffer() {
        let sink = SharedSink::with_capacity(100);
        let mut a = sink.clone();
        let mut b = sink.clone();
        a.record(ev(1, 1));
        b.record(ev(2, 2));
        assert_eq!(sink.snapshot_events().len(), 2);
        assert_eq!(sink.metrics_snapshot().counter(names::PACKETS_SENT), 2);
    }

    #[test]
    fn shared_sink_records_from_threads() {
        let sink = SharedSink::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let mut s = sink.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        s.record(ev(t * 1000 + i, 1));
                    }
                });
            }
        });
        assert_eq!(sink.snapshot_events().len(), 400);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RingBufferSink::with_capacity(0);
    }
}
