//! # locus-obs — unified observability for the locusroute simulators
//!
//! Every simulator layer (mesh kernel, message-passing nodes, shared-
//! memory emulator and threaded executor, coherence protocol, sequential
//! router) emits the same typed [`Event`]s through the same [`Sink`]
//! trait. One vocabulary, three sinks, three exporters:
//!
//! * [`NullSink`] — recording off; instrumentation costs one predictable
//!   branch per site and never constructs an event.
//! * [`RingBufferSink`] — bounded in-memory buffer feeding a [`Metrics`]
//!   registry (named counters + log₂ histograms with snapshot/diff).
//! * [`SharedSink`] — clonable `Arc<Mutex<RingBufferSink>>` handle for
//!   the threaded executor and for callers that need the data back after
//!   an engine consumed its sink.
//!
//! Exporters ([`export`]): Chrome `chrome://tracing` trace-event JSON,
//! flat metrics JSON, and an ASCII per-node timeline — all hand-rolled
//! (the workspace omits `serde`, DESIGN §7).
//!
//! ```
//! use locus_obs::{Event, EventKind, RingBufferSink, Sink};
//!
//! let mut sink = RingBufferSink::new();
//! sink.record(Event {
//!     at_ns: 125,
//!     node: 0,
//!     kind: EventKind::PacketSent { dst: 1, payload_bytes: 40, wire_bytes: 44, hops: 2 },
//! });
//! assert_eq!(sink.metrics().counter(locus_obs::names::BYTES_SENT), 40);
//! let trace = locus_obs::export::chrome_trace(&sink.to_vec());
//! locus_obs::export::validate_json(&trace).unwrap();
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use event::{Event, EventKind, FaultKind, NodeId};
pub use metrics::{hists, names, Histogram, Metrics, MetricsSnapshot};
pub use sink::{NullSink, RingBufferSink, SharedSink, Sink};
