//! Property tests for the observability crate.

use locus_obs::metrics::{bucket_hi, bucket_index, bucket_lo};
use locus_obs::{Event, EventKind, RingBufferSink, Sink};
use proptest::prelude::*;

fn packet_event(at_ns: u64, node: u32, seq: u32) -> Event {
    // The payload carries a sequence tag so reorderings are detectable
    // even among events with identical timestamps.
    Event {
        at_ns,
        node,
        kind: EventKind::PacketSent { dst: seq, payload_bytes: seq, wire_bytes: seq, hops: 1 },
    }
}

fn seq_of(ev: &Event) -> u32 {
    match ev.kind {
        EventKind::PacketSent { dst, .. } => dst,
        _ => unreachable!(),
    }
}

proptest! {
    /// Events recorded with equal timestamps must come back in exactly
    /// the order they were recorded (the ring is FIFO, never a sort).
    #[test]
    fn ring_buffer_never_reorders_same_timestamp_events(
        timestamps in proptest::collection::vec(0u64..8, 1..200),
        capacity in 1usize..300,
    ) {
        let mut sink = RingBufferSink::with_capacity(capacity);
        for (seq, &t) in timestamps.iter().enumerate() {
            sink.record(packet_event(t, 0, seq as u32));
        }
        let kept = sink.to_vec();
        prop_assert_eq!(kept.len(), timestamps.len().min(capacity));
        // The retained window is the most recent suffix, in order.
        let expect_start = timestamps.len() - kept.len();
        for (i, ev) in kept.iter().enumerate() {
            prop_assert_eq!(seq_of(ev) as usize, expect_start + i);
        }
        // Within every timestamp class, sequence numbers stay increasing.
        for t in 0..8u64 {
            let seqs: Vec<u32> =
                kept.iter().filter(|e| e.at_ns == t).map(seq_of).collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "reordered at t={}: {:?}", t, seqs);
        }
    }

    /// Every value lands in a bucket whose bounds contain it, and bucket
    /// bounds tile the u64 range without gaps.
    #[test]
    fn bucket_bounds_contain_their_values(v in proptest::arbitrary::any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(bucket_lo(i) <= v);
        prop_assert!(v <= bucket_hi(i));
    }

    /// Metrics byte counters equal the sum of recorded payloads no
    /// matter how the ring wraps.
    #[test]
    fn metrics_survive_ring_wrap(
        payloads in proptest::collection::vec(0u32..10_000, 1..100),
        capacity in 1usize..16,
    ) {
        let mut sink = RingBufferSink::with_capacity(capacity);
        for (i, &p) in payloads.iter().enumerate() {
            sink.record(Event {
                at_ns: i as u64,
                node: 0,
                kind: EventKind::PacketSent { dst: 1, payload_bytes: p, wire_bytes: p + 4, hops: 2 },
            });
        }
        let total: u64 = payloads.iter().map(|&p| p as u64).sum();
        prop_assert_eq!(sink.metrics().counter(locus_obs::names::BYTES_SENT), total);
        prop_assert_eq!(
            sink.metrics().counter(locus_obs::names::PACKETS_SENT),
            payloads.len() as u64
        );
        prop_assert_eq!(sink.dropped() as usize, payloads.len().saturating_sub(capacity));
    }
}
