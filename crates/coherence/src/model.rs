//! Pluggable memory-system backends: the [`MemoryModel`] trait and its
//! name→constructor registry.
//!
//! The paper's shared-memory numbers come from a single 1989 design
//! point — a snooped Write-Back-with-Invalidate bus ([`CoherenceSim`]).
//! This module turns that into a family: every backend consumes the same
//! Tango-style [`Trace`] and produces a [`MemoryOutcome`] — protocol
//! traffic ([`TrafficStats`]), invalidation-transport bytes, per-processor
//! reference counts, and queueing-delay accounting from the mesh
//! [`Arbiter`] resolved under both FIFO and criticality-aware service.
//!
//! Registered backends:
//!
//! * `bus-wbi` — the paper's snooped WBI bus, delegated verbatim to
//!   [`CoherenceSim`] (Table 3 byte-identity is a test invariant);
//! * `bus-wt` — the write-through ablation on the same bus;
//! * `directory` — directory-based MSI: WBI line semantics, but line
//!   state lives at an address-interleaved home node that *unicasts*
//!   invalidations to the actual holders, so invalidation transport
//!   scales with sharing rather than with machine size;
//! * `dls` — a directoryless shared LLC (arXiv:1206.4753): shared lines
//!   are never privately cached, every access is a word transfer to the
//!   line's home tile — no invalidations, no refetches, and byte traffic
//!   that is insensitive to line size.
//!
//! ## Traffic vs transport accounting
//!
//! [`MemoryOutcome::stats`] counts *protocol data traffic* — line fetches
//! and word-write announcements — identically across WBI-semantics
//! backends, so backends are directly comparable and `bus-wbi` stays
//! byte-identical to the legacy path. The broadcast-vs-unicast difference
//! lives in [`MemoryOutcome::invalidation_traffic_bytes`]: on the bus
//! every write announcement is snooped by all `P−1` other caches; the
//! directory sends one word per *actual* holder; DLS sends none.
//!
//! ## Contention and criticality
//!
//! Each backend logs every transaction against its contended service
//! point (bus = one resource; directory/DLS = one resource per home
//! tile, with mesh-distance flight time added to the arrival) and the
//! log is resolved twice — [`ServicePolicy::Fifo`] and
//! [`ServicePolicy::CriticalFirst`] — so a report can state how much
//! critical-request wait the priority arbiter removes on identical
//! traffic (arXiv:1606.05933). Criticality comes from the trace: the
//! emulator tags rip-up/commit stores [`Criticality::Critical`].

use std::collections::BTreeMap;

use locus_mesh::{
    Arbiter, MeshConfig, ResolvedContention, ServicePolicy, ServiceRequest, Topology,
};
use locus_obs::{Event as ObsEvent, EventKind as ObsKind, NullSink, Sink};

use crate::protocol::{
    CoherenceConfig, CoherenceSim, DirectoryParams, DlsParams, Protocol, TrafficStats,
};
use crate::trace::{MemRef, RefKind, Trace};

/// Everything a backend needs to price a trace: processor count, the
/// protocol configuration (line size, word size, protocol variant with
/// its params), and the machine the messages travel on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Processors issuing references (home tiles live on the same mesh).
    pub n_procs: u32,
    /// Protocol family and sizes.
    pub coherence: CoherenceConfig,
    /// Machine model used to price transport and contention.
    pub mesh: MeshConfig,
}

impl MemoryConfig {
    /// The paper's evaluation machine for `n_procs` processors with the
    /// given line size: WBI protocol, 4-byte words, Ametek-style mesh of
    /// near-square shape (16 → 4×4).
    pub fn paper(n_procs: u32, line_size: u32) -> Self {
        let n = n_procs.max(1);
        let topo = Topology::for_procs(n as usize);
        MemoryConfig {
            n_procs: n,
            coherence: CoherenceConfig::with_line_size(line_size),
            mesh: MeshConfig::ametek(topo.rows, topo.cols),
        }
    }

    /// Returns `self` with the protocol replaced.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.coherence.protocol = protocol;
        self
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::paper(16, 8)
    }
}

/// Per-processor reference counts, tallied by each backend's own replay
/// loop (the backend-agreement proptests pin these to the trace).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcCounts {
    /// Read references issued by the processor.
    pub reads: u64,
    /// Write references issued by the processor.
    pub writes: u64,
}

/// What one backend produced over one trace.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryOutcome {
    /// Registry name of the backend that produced this.
    pub backend: &'static str,
    /// Protocol data traffic (line fetches + word-write announcements),
    /// accounted identically across WBI-semantics backends.
    pub stats: TrafficStats,
    /// Bytes spent *transporting* invalidation news: bus backends
    /// broadcast every announcement to all `P−1` snoopers, the directory
    /// unicasts one word per actual holder, DLS sends none.
    pub invalidation_traffic_bytes: u64,
    /// Reference counts per processor (index = processor id).
    pub per_proc: Vec<ProcCounts>,
    /// Queueing delays when service points grant in arrival order.
    pub fifo: ResolvedContention,
    /// Queueing delays when queued critical requests are granted first.
    pub critical_first: ResolvedContention,
}

impl MemoryOutcome {
    /// Coherence *events* over the trace: invalidations plus forced
    /// refetches. Zero on any single-processor trace, on every backend.
    pub fn coherence_events(&self) -> u64 {
        self.stats.invalidations + self.stats.refetches
    }

    /// Total critical-request wait the priority arbiter removes relative
    /// to FIFO on the same request log (ns).
    pub fn critical_wait_saved_ns(&self) -> u64 {
        self.fifo.critical.total_wait_ns.saturating_sub(self.critical_first.critical.total_wait_ns)
    }
}

/// A memory-system backend: replay a trace, price its traffic.
///
/// Implementations are stateless configuration objects — `run` builds all
/// per-run state internally, so one model can price many traces.
pub trait MemoryModel {
    /// Registry name of the backend.
    fn name(&self) -> &'static str;

    /// Replays `trace`, streaming one [`EventKind::MemRequest`] per
    /// priced transaction into `sink`.
    ///
    /// [`EventKind::MemRequest`]: locus_obs::EventKind::MemRequest
    fn run_observed(&self, trace: &Trace, sink: &mut dyn Sink) -> MemoryOutcome;

    /// Replays `trace` without observability.
    fn run(&self, trace: &Trace) -> MemoryOutcome {
        self.run_observed(trace, &mut NullSink)
    }
}

/// Shared transport pricing: how long a transaction occupies its service
/// point and how long it flies through the mesh to get there.
#[derive(Clone, Copy)]
struct Pricer {
    mesh: MeshConfig,
    topo: Topology,
}

impl Pricer {
    fn new(cfg: &MemoryConfig) -> Self {
        Pricer { mesh: cfg.mesh, topo: Topology::new(cfg.mesh.rows, cfg.mesh.cols) }
    }

    /// Occupancy of the service point: per-byte receive/disassembly cost
    /// over payload plus framing (the bus analogue: transfer cycles).
    fn service_ns(&self, payload_bytes: u64) -> u64 {
        self.mesh.recv_per_byte_ns * (self.mesh.header_bytes as u64 + payload_bytes)
    }

    /// Flight time from the requesting processor's tile to the home tile
    /// (dimension-order distance at `hop_time_ns` per hop); the request
    /// only starts queueing once it arrives.
    fn flight_ns(&self, proc: u32, home: u32) -> u64 {
        let n = self.topo.n_nodes();
        let d = self.topo.hops(proc as usize % n, home as usize % n);
        self.mesh.hop_time_ns * d as u64
    }
}

/// Per-run accumulator shared by all backends: per-proc counts, the
/// arbiter request log, and the obs stream.
struct RunAcc<'a> {
    per_proc: Vec<ProcCounts>,
    arb: Arbiter,
    sink: &'a mut dyn Sink,
    obs_on: bool,
}

impl<'a> RunAcc<'a> {
    fn new(n_procs: u32, sink: &'a mut dyn Sink) -> Self {
        let obs_on = sink.enabled();
        RunAcc {
            per_proc: vec![ProcCounts::default(); n_procs as usize],
            arb: Arbiter::new(),
            sink,
            obs_on,
        }
    }

    fn count(&mut self, r: &MemRef) {
        if r.proc as usize >= self.per_proc.len() {
            self.per_proc.resize(r.proc as usize + 1, ProcCounts::default());
        }
        let c = &mut self.per_proc[r.proc as usize];
        match r.kind {
            RefKind::Read => c.reads += 1,
            RefKind::Write => c.writes += 1,
        }
    }

    /// Logs one priced transaction against `resource`.
    fn request(&mut self, resource: u32, r: &MemRef, bytes: u64, arrive_ns: u64, service_ns: u64) {
        self.arb.push(ServiceRequest {
            resource,
            proc: r.proc,
            arrive_ns,
            service_ns,
            critical: r.is_critical(),
        });
        if self.obs_on {
            self.sink.record(ObsEvent {
                at_ns: arrive_ns,
                node: r.proc,
                kind: ObsKind::MemRequest {
                    resource,
                    bytes: bytes.min(u32::MAX as u64) as u32,
                    critical: r.is_critical(),
                },
            });
        }
    }

    fn finish(
        self,
        backend: &'static str,
        stats: TrafficStats,
        invalidation_traffic_bytes: u64,
    ) -> MemoryOutcome {
        let fifo = self.arb.resolve(ServicePolicy::Fifo);
        let critical_first = self.arb.resolve(ServicePolicy::CriticalFirst);
        MemoryOutcome {
            backend,
            stats,
            invalidation_traffic_bytes,
            per_proc: self.per_proc,
            fifo,
            critical_first,
        }
    }
}

/// The snooped-bus backends (`bus-wbi` / `bus-wt`): traffic accounting
/// is delegated access-by-access to [`CoherenceSim`], so the resulting
/// [`TrafficStats`] are byte-identical to the legacy Table 3 path.
pub struct BusModel {
    cfg: MemoryConfig,
    write_through: bool,
}

impl BusModel {
    /// A bus backend over `cfg`; `write_through` selects the ablation.
    pub fn new(cfg: MemoryConfig, write_through: bool) -> Self {
        BusModel { cfg, write_through }
    }
}

impl MemoryModel for BusModel {
    fn name(&self) -> &'static str {
        if self.write_through {
            "bus-wt"
        } else {
            "bus-wbi"
        }
    }

    fn run_observed(&self, trace: &Trace, sink: &mut dyn Sink) -> MemoryOutcome {
        let mut bus_cfg =
            CoherenceConfig { protocol: Protocol::WriteBackInvalidate, ..self.cfg.coherence };
        if self.write_through {
            bus_cfg.protocol = Protocol::WriteThrough;
        }
        let pricer = Pricer::new(&self.cfg);
        let mut sim = CoherenceSim::new(bus_cfg);
        let mut acc = RunAcc::new(self.cfg.n_procs, sink);
        for r in trace.refs() {
            acc.count(r);
            let before = sim.stats().total_bytes;
            sim.access(r.proc, r.addr, r.kind);
            let moved = sim.stats().total_bytes - before;
            if moved > 0 {
                // One bus transaction; the bus is a single broadcast
                // medium, so there is no per-hop flight time.
                acc.request(0, r, moved, r.time, pricer.service_ns(moved));
            }
        }
        let stats = *sim.stats();
        // Every announcement is snooped by all other caches.
        let broadcast = stats.word_writes
            * bus_cfg.word_bytes as u64
            * (self.cfg.n_procs as u64).saturating_sub(1);
        acc.finish(self.name(), stats, broadcast)
    }
}

/// Per-line directory entry (same shape as the bus simulator's snoop
/// state: infinite caches, so presence bits never get evicted).
#[derive(Clone, Copy, Default)]
struct DirLine {
    holders: u64,
    dirty: Option<u32>,
    invalidated: u64,
}

/// The `directory` backend: MSI with WBI line semantics, home-node line
/// state, and unicast invalidations priced through the mesh.
pub struct DirectoryModel {
    cfg: MemoryConfig,
    params: DirectoryParams,
}

impl DirectoryModel {
    /// A directory backend over `cfg` with the given home interleaving.
    pub fn new(cfg: MemoryConfig, params: DirectoryParams) -> Self {
        assert!(params.home_tiles > 0, "directory needs at least one home tile");
        DirectoryModel { cfg, params }
    }
}

impl MemoryModel for DirectoryModel {
    fn name(&self) -> &'static str {
        "directory"
    }

    fn run_observed(&self, trace: &Trace, sink: &mut dyn Sink) -> MemoryOutcome {
        let line_size = self.cfg.coherence.line_size;
        let word = self.cfg.coherence.word_bytes as u64;
        let pricer = Pricer::new(&self.cfg);
        let mut lines: BTreeMap<u32, DirLine> = BTreeMap::new();
        let mut stats = TrafficStats::default();
        let mut unicast_bytes = 0u64;
        let mut acc = RunAcc::new(self.cfg.n_procs, sink);

        for r in trace.refs() {
            assert!(r.proc < 64, "bitmask directory supports up to 64 processors");
            acc.count(r);
            let line_addr = r.addr / line_size;
            let home = line_addr % self.params.home_tiles;
            let st = lines.entry(line_addr).or_default();
            let pbit = 1u64 << r.proc;
            let line_bytes = line_size as u64;
            // Bytes this access moves (data) and transports (invals).
            let mut moved = 0u64;
            let mut invals = 0u64;

            match r.kind {
                RefKind::Read => {
                    if st.holders & pbit != 0 {
                        continue; // hit in the private cache
                    }
                    // Read miss: home supplies the line (a dirty owner
                    // writes back through the home in passing).
                    stats.line_fetches += 1;
                    stats.total_bytes += line_bytes;
                    st.dirty = None;
                    if st.invalidated & pbit != 0 {
                        st.invalidated &= !pbit;
                        stats.refetches += 1;
                        stats.write_caused_bytes += line_bytes;
                    } else {
                        stats.read_caused_bytes += line_bytes;
                    }
                    st.holders |= pbit;
                    moved = line_bytes;
                }
                RefKind::Write => {
                    if st.dirty == Some(r.proc) {
                        continue; // exclusive dirty hit
                    }
                    if st.holders & pbit == 0 {
                        stats.line_fetches += 1;
                        stats.total_bytes += line_bytes;
                        stats.write_caused_bytes += line_bytes;
                        if st.invalidated & pbit != 0 {
                            st.invalidated &= !pbit;
                            stats.refetches += 1;
                        }
                        st.holders |= pbit;
                        moved += line_bytes;
                    }
                    // Ownership request to the home: one word announces
                    // the write; the home unicasts an invalidation word
                    // to each *actual* holder (no broadcast).
                    stats.word_writes += 1;
                    stats.total_bytes += word;
                    stats.write_caused_bytes += word;
                    let others = st.holders & !pbit;
                    stats.invalidations += others.count_ones() as u64;
                    st.invalidated |= others;
                    st.holders = pbit;
                    st.dirty = Some(r.proc);
                    moved += word;
                    invals = others.count_ones() as u64 * word;
                    unicast_bytes += invals;
                }
            }
            let arrive = r.time + pricer.flight_ns(r.proc, home);
            acc.request(home, r, moved + invals, arrive, pricer.service_ns(moved + invals));
        }
        acc.finish(self.name(), stats, unicast_bytes)
    }
}

/// The `dls` backend: a directoryless shared LLC. Shared lines are never
/// privately cached — every reference is a word transfer to the line's
/// address-interleaved home tile. No private copies means no
/// invalidations and no refetches, and total traffic that does not
/// depend on the line size.
pub struct DlsModel {
    cfg: MemoryConfig,
    params: DlsParams,
}

impl DlsModel {
    /// A DLS backend over `cfg` with the given tile interleaving.
    pub fn new(cfg: MemoryConfig, params: DlsParams) -> Self {
        assert!(params.interleave_lines > 0, "interleave granularity must be nonzero");
        DlsModel { cfg, params }
    }
}

impl MemoryModel for DlsModel {
    fn name(&self) -> &'static str {
        "dls"
    }

    fn run_observed(&self, trace: &Trace, sink: &mut dyn Sink) -> MemoryOutcome {
        let line_size = self.cfg.coherence.line_size;
        let word = self.cfg.coherence.word_bytes as u64;
        let tiles = self.cfg.n_procs.max(1);
        let pricer = Pricer::new(&self.cfg);
        let mut stats = TrafficStats::default();
        let mut acc = RunAcc::new(self.cfg.n_procs, sink);

        for r in trace.refs() {
            acc.count(r);
            let line_addr = r.addr / line_size;
            let home = (line_addr / self.params.interleave_lines) % tiles;
            stats.total_bytes += word;
            match r.kind {
                RefKind::Read => stats.read_caused_bytes += word,
                RefKind::Write => {
                    stats.write_caused_bytes += word;
                    stats.word_writes += 1;
                }
            }
            let arrive = r.time + pricer.flight_ns(r.proc, home);
            acc.request(home, r, word, arrive, pricer.service_ns(word));
        }
        acc.finish(self.name(), stats, 0)
    }
}

/// Builds the backend that services `cfg.coherence.protocol` — the
/// canonical constructor when the protocol variant (with its params) is
/// already known.
pub fn model_for_config(cfg: MemoryConfig) -> Box<dyn MemoryModel> {
    match cfg.coherence.protocol {
        Protocol::WriteBackInvalidate => Box::new(BusModel::new(cfg, false)),
        Protocol::WriteThrough => Box::new(BusModel::new(cfg, true)),
        Protocol::Directory(params) => Box::new(DirectoryModel::new(cfg, params)),
        Protocol::DirectorylessLlc(params) => Box::new(DlsModel::new(cfg, params)),
    }
}

/// One registered backend.
pub struct MemoryModelEntry {
    /// CLI/report name.
    pub name: &'static str,
    /// One-line description for `--memory help` listings.
    pub summary: &'static str,
    /// Constructor: adjusts `cfg`'s protocol variant (defaulting params
    /// from the config when the variant doesn't already match) and builds.
    pub build: fn(MemoryConfig) -> Box<dyn MemoryModel>,
}

fn build_bus_wbi(cfg: MemoryConfig) -> Box<dyn MemoryModel> {
    model_for_config(cfg.with_protocol(Protocol::WriteBackInvalidate))
}

fn build_bus_wt(cfg: MemoryConfig) -> Box<dyn MemoryModel> {
    model_for_config(cfg.with_protocol(Protocol::WriteThrough))
}

fn build_directory(cfg: MemoryConfig) -> Box<dyn MemoryModel> {
    let params = match cfg.coherence.protocol {
        Protocol::Directory(p) => p,
        _ => DirectoryParams::per_tile(cfg.n_procs),
    };
    model_for_config(cfg.with_protocol(Protocol::Directory(params)))
}

fn build_dls(cfg: MemoryConfig) -> Box<dyn MemoryModel> {
    let params = match cfg.coherence.protocol {
        Protocol::DirectorylessLlc(p) => p,
        _ => DlsParams::default(),
    };
    model_for_config(cfg.with_protocol(Protocol::DirectorylessLlc(params)))
}

static MEMORY_MODELS: [MemoryModelEntry; 4] = [
    MemoryModelEntry {
        name: "bus-wbi",
        summary: "snooped Write-Back-with-Invalidate bus (the paper's Table 3 memory system)",
        build: build_bus_wbi,
    },
    MemoryModelEntry {
        name: "bus-wt",
        summary: "snooped write-through bus (Archibald & Baer ablation; every write on the bus)",
        build: build_bus_wt,
    },
    MemoryModelEntry {
        name: "directory",
        summary: "directory-based MSI: home-node line state, unicast invalidations over the mesh",
        build: build_directory,
    },
    MemoryModelEntry {
        name: "dls",
        summary: "directoryless shared LLC: no private caching, word transfers to home tiles",
        build: build_dls,
    },
];

/// All registered backends, in presentation order.
pub fn memory_registry() -> &'static [MemoryModelEntry] {
    &MEMORY_MODELS
}

/// Builds the backend registered as `name`, or an error listing the
/// known names.
pub fn build_memory_model(name: &str, cfg: MemoryConfig) -> Result<Box<dyn MemoryModel>, String> {
    match MEMORY_MODELS.iter().find(|e| e.name == name) {
        Some(entry) => Ok((entry.build)(cfg)),
        None => {
            let known: Vec<&str> = MEMORY_MODELS.iter().map(|e| e.name).collect();
            Err(format!("unknown memory backend `{name}` (known: {})", known.join(", ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Criticality;

    /// A churny multi-processor trace with tagged criticality: every
    /// processor sweeps reads over a shared region (background) and the
    /// round's winner commits a few stores (critical).
    fn churn_trace(n_procs: u32) -> Trace {
        let mut t = Trace::new();
        let mut time = 0u64;
        for round in 0..20u32 {
            for p in 0..n_procs {
                for cell in 0..24u32 {
                    t.push(MemRef::new(time + (cell as u64) * 7, p, cell * 2, RefKind::Read));
                }
            }
            time += 24 * 7;
            for i in 0..5u32 {
                t.push(
                    MemRef::new(time, round % n_procs, ((round * 5 + i) % 24) * 2, RefKind::Write)
                        .with_delta(1)
                        .with_criticality(Criticality::Critical),
                );
                time += 3;
            }
        }
        t.sort_by_time();
        t
    }

    #[test]
    fn bus_wbi_is_byte_identical_to_coherence_sim() {
        let t = churn_trace(4);
        for line in [4u32, 8, 32] {
            let legacy = CoherenceSim::new(CoherenceConfig::with_line_size(line)).run(&t);
            let out = BusModel::new(MemoryConfig::paper(4, line), false).run(&t);
            assert_eq!(out.stats, legacy, "line {line}");
        }
    }

    #[test]
    fn bus_wt_is_byte_identical_to_coherence_sim_write_through() {
        let t = churn_trace(4);
        let legacy = CoherenceSim::new(CoherenceConfig::with_line_size(8).write_through()).run(&t);
        let out = BusModel::new(MemoryConfig::paper(4, 8), true).run(&t);
        assert_eq!(out.stats, legacy);
    }

    #[test]
    fn directory_data_traffic_matches_bus_wbi() {
        // Same WBI line semantics, different transport: the protocol data
        // traffic must agree; only invalidation transport differs.
        let t = churn_trace(4);
        let cfg = MemoryConfig::paper(4, 8);
        let bus = build_memory_model("bus-wbi", cfg).expect("registered").run(&t);
        let dir = build_memory_model("directory", cfg).expect("registered").run(&t);
        assert_eq!(dir.stats, bus.stats);
        assert!(dir.invalidation_traffic_bytes <= bus.invalidation_traffic_bytes);
    }

    #[test]
    fn directory_unicast_beats_broadcast_with_few_sharers() {
        // One writer, one reader, 16 processors: bus broadcast pays 15
        // snoops per announcement, the directory pays one unicast.
        let mut t = Trace::new();
        for i in 0..40u64 {
            t.push(MemRef::new(3 * i, 0, 0, RefKind::Write));
            t.push(MemRef::new(3 * i + 1, 1, 0, RefKind::Read));
        }
        let cfg = MemoryConfig::paper(16, 8);
        let bus = build_memory_model("bus-wbi", cfg).expect("registered").run(&t);
        let dir = build_memory_model("directory", cfg).expect("registered").run(&t);
        assert!(dir.invalidation_traffic_bytes < bus.invalidation_traffic_bytes / 8);
    }

    #[test]
    fn dls_has_no_coherence_traffic_and_ignores_line_size() {
        let t = churn_trace(4);
        let a = build_memory_model("dls", MemoryConfig::paper(4, 4)).expect("registered").run(&t);
        let b = build_memory_model("dls", MemoryConfig::paper(4, 32)).expect("registered").run(&t);
        assert_eq!(a.coherence_events(), 0);
        assert_eq!(a.invalidation_traffic_bytes, 0);
        assert_eq!(a.stats.total_bytes, b.stats.total_bytes, "DLS is line-size insensitive");
        assert_eq!(a.stats.total_bytes, (t.len() as u64) * 4);
    }

    #[test]
    fn per_proc_counts_agree_across_backends() {
        let t = churn_trace(4);
        let cfg = MemoryConfig::paper(4, 8);
        let outs: Vec<MemoryOutcome> =
            memory_registry().iter().map(|e| (e.build)(cfg).run(&t)).collect();
        for pair in outs.windows(2) {
            assert_eq!(
                pair[0].per_proc, pair[1].per_proc,
                "{} vs {}",
                pair[0].backend, pair[1].backend
            );
        }
        let total: u64 = outs[0].per_proc.iter().map(|c| c.reads + c.writes).sum();
        assert_eq!(total, t.len() as u64);
    }

    #[test]
    fn critical_first_reduces_critical_wait_under_churn() {
        let t = churn_trace(8);
        for name in ["bus-wbi", "directory", "dls"] {
            let out =
                build_memory_model(name, MemoryConfig::paper(8, 8)).expect("registered").run(&t);
            assert!(out.fifo.critical.requests > 0, "{name}: no critical requests priced");
            assert!(
                out.critical_first.critical.total_wait_ns <= out.fifo.critical.total_wait_ns,
                "{name}: priority must not increase critical wait"
            );
        }
        // On the contended single bus the reduction must be strict.
        let bus =
            build_memory_model("bus-wbi", MemoryConfig::paper(8, 8)).expect("registered").run(&t);
        assert!(
            bus.critical_wait_saved_ns() > 0,
            "bus churn must show a FIFO-vs-priority gap (fifo {} ns)",
            bus.fifo.critical.total_wait_ns
        );
    }

    #[test]
    fn model_for_config_dispatches_on_protocol_variant() {
        let cfg = MemoryConfig::paper(4, 8);
        assert_eq!(model_for_config(cfg).name(), "bus-wbi");
        assert_eq!(model_for_config(cfg.with_protocol(Protocol::WriteThrough)).name(), "bus-wt");
        let dir = cfg.with_protocol(Protocol::Directory(DirectoryParams::per_tile(4)));
        assert_eq!(model_for_config(dir).name(), "directory");
        let dls = cfg.with_protocol(Protocol::DirectorylessLlc(DlsParams::default()));
        assert_eq!(model_for_config(dls).name(), "dls");
    }

    #[test]
    fn registry_rejects_unknown_names() {
        let err = build_memory_model("mesi-torus", MemoryConfig::default())
            .err()
            .expect("must be unknown");
        assert!(err.contains("bus-wbi") && err.contains("dls"), "{err}");
    }

    #[test]
    fn observed_run_streams_mem_requests() {
        use locus_obs::{names, SharedSink};
        let t = churn_trace(4);
        let sink = SharedSink::new();
        let out = build_memory_model("directory", MemoryConfig::paper(4, 8))
            .expect("registered")
            .run_observed(&t, &mut sink.clone());
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::MEM_REQUESTS), out.fifo.all().requests);
        assert_eq!(m.counter(names::MEM_CRITICAL_REQUESTS), out.fifo.critical.requests);
    }
}
