//! The Write-Back-with-Invalidate protocol state machine and bus-byte
//! accounting.

use std::collections::BTreeMap;

use locus_obs::{Event as ObsEvent, EventKind as ObsKind, NullSink, Sink};

use crate::trace::{RefKind, Trace};

/// Parameters of the directory-based MSI backend: line state lives at an
/// address-interleaved *home node* which unicasts invalidations to the
/// actual holders instead of broadcasting on a snooped bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectoryParams {
    /// Number of home nodes the directory is interleaved over; home `h`
    /// lives on mesh node `h % n_nodes`. Usually the processor count
    /// (one directory slice per tile).
    pub home_tiles: u32,
}

impl DirectoryParams {
    /// One directory slice per processor tile.
    pub fn per_tile(n_procs: u32) -> Self {
        assert!(n_procs > 0, "directory needs at least one home tile");
        DirectoryParams { home_tiles: n_procs }
    }
}

impl Default for DirectoryParams {
    fn default() -> Self {
        DirectoryParams::per_tile(16)
    }
}

/// Parameters of the DLS-style directoryless shared LLC (arXiv:1206.4753):
/// shared data is never privately cached — every access goes to the
/// line's address-interleaved home tile, so no invalidations or refetches
/// ever happen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DlsParams {
    /// Consecutive lines mapped to the same home tile before the
    /// interleaving moves to the next (1 = line-granular interleaving).
    pub interleave_lines: u32,
}

impl Default for DlsParams {
    fn default() -> Self {
        DlsParams { interleave_lines: 1 }
    }
}

/// The coherence protocol family to simulate. Backend-specific knobs
/// travel inside the variant, so adding a backend never grows unrelated
/// flat fields on [`CoherenceConfig`].
///
/// The paper evaluates Write-Back-with-Invalidate (citing Archibald &
/// Baer's comparative study); the write-through variant is provided as an
/// ablation — it is the other classic point in that study's design space
/// and shows why write-back was the sensible choice for this workload.
/// The directory and DLS variants are serviced by the [`crate::model`]
/// registry, not by the bus simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Write-Back with Invalidate: first write to a clean line announces
    /// itself with one bus word and invalidates other copies; subsequent
    /// writes to the now-dirty line are free.
    #[default]
    WriteBackInvalidate,
    /// Write-through: *every* write puts a word on the bus and
    /// invalidates other copies; lines are never dirty.
    WriteThrough,
    /// Directory-based MSI: WBI line semantics, but invalidations are
    /// unicast from the line's home node to the actual holders.
    Directory(DirectoryParams),
    /// Directoryless shared LLC: no private copies of shared lines, every
    /// access is a word transfer to the line's home tile.
    DirectorylessLlc(DlsParams),
}

impl Protocol {
    /// Whether the protocol runs on the snooped bus simulator
    /// ([`CoherenceSim`]); the other variants need the mesh-priced
    /// backends in [`crate::model`].
    pub fn is_bus(&self) -> bool {
        matches!(self, Protocol::WriteBackInvalidate | Protocol::WriteThrough)
    }

    /// The registry name of the backend that services this protocol.
    pub fn backend_name(&self) -> &'static str {
        match self {
            Protocol::WriteBackInvalidate => "bus-wbi",
            Protocol::WriteThrough => "bus-wt",
            Protocol::Directory(_) => "directory",
            Protocol::DirectorylessLlc(_) => "dls",
        }
    }
}

/// Protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Cache line size in bytes (Table 3 sweeps 4, 8, 16, 32).
    pub line_size: u32,
    /// Size of the bus word write used to announce writes.
    pub word_bytes: u32,
    /// Protocol family.
    pub protocol: Protocol,
}

impl CoherenceConfig {
    /// Write-Back-with-Invalidate with the given line size and 4-byte bus
    /// words — the paper's configuration.
    pub fn with_line_size(line_size: u32) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        CoherenceConfig { line_size, word_bytes: 4, protocol: Protocol::WriteBackInvalidate }
    }

    /// Switches to the write-through ablation protocol.
    pub fn write_through(mut self) -> Self {
        self.protocol = Protocol::WriteThrough;
        self
    }

    /// Switches to the directory-based MSI protocol.
    pub fn directory(mut self, params: DirectoryParams) -> Self {
        self.protocol = Protocol::Directory(params);
        self
    }

    /// Switches to the directoryless shared-LLC protocol.
    pub fn dls(mut self, params: DlsParams) -> Self {
        self.protocol = Protocol::DirectorylessLlc(params);
        self
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig::with_line_size(8)
    }
}

/// Bus traffic measured over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// All bytes moved on the shared bus.
    pub total_bytes: u64,
    /// Bytes attributable to reads (cold fetches by read accesses).
    pub read_caused_bytes: u64,
    /// Bytes attributable to writes: bus word writes, write-miss fetches,
    /// and refetches of invalidated lines (§5.2's ">80% of the bytes
    /// transferred are caused by writes").
    pub write_caused_bytes: u64,
    /// Whole-line transfers.
    pub line_fetches: u64,
    /// Bus word writes (first write to a clean line).
    pub word_writes: u64,
    /// Cache-line invalidations performed in other caches.
    pub invalidations: u64,
    /// Line fetches that re-load a previously invalidated copy.
    pub refetches: u64,
}

impl TrafficStats {
    /// Traffic in megabytes (10^6 bytes), as the tables report.
    pub fn mbytes(&self) -> f64 {
        self.total_bytes as f64 / 1e6
    }

    /// Fraction of bytes caused by writes.
    pub fn write_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.write_caused_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Per-line directory entry.
#[derive(Clone, Copy, Default)]
struct LineState {
    /// Bitmask of processors holding a valid copy.
    holders: u64,
    /// Processor holding the line dirty (exclusive), if any.
    dirty: Option<u32>,
    /// Processors whose copy was invalidated and not yet refetched.
    invalidated: u64,
}

/// The coherence simulator: infinite per-processor caches over a shared
/// bus, Write-Back-with-Invalidate.
pub struct CoherenceSim {
    config: CoherenceConfig,
    lines: BTreeMap<u32, LineState>,
    stats: TrafficStats,
    sink: Box<dyn Sink>,
    obs_on: bool,
    /// Timestamp for emitted events: the current reference's trace time
    /// when driven by [`CoherenceSim::run`], else an access counter.
    tick: u64,
}

impl CoherenceSim {
    /// Creates a simulator.
    ///
    /// # Panics
    /// Panics if `config.protocol` is not a bus protocol — the directory
    /// and DLS variants are serviced by [`crate::model::model_for_config`].
    pub fn new(config: CoherenceConfig) -> Self {
        assert!(
            config.protocol.is_bus(),
            "CoherenceSim only simulates bus protocols; build `{}` via the model registry",
            config.protocol.backend_name()
        );
        CoherenceSim {
            config,
            lines: BTreeMap::new(),
            stats: TrafficStats::default(),
            sink: Box::new(NullSink),
            obs_on: false,
            tick: 0,
        }
    }

    /// Routes protocol events (cache misses, invalidations, bus
    /// transfers) into `sink`, stamped with trace reference times.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.obs_on = sink.enabled();
        self.sink = sink;
        self
    }

    /// Processes a single reference.
    pub fn access(&mut self, proc: u32, addr: u32, kind: RefKind) {
        assert!(proc < 64, "bitmask directory supports up to 64 processors");
        let line_addr = addr / self.config.line_size;
        let st = self.lines.entry(line_addr).or_default();
        let pbit = 1u64 << proc;
        let line_bytes = self.config.line_size as u64;

        match kind {
            RefKind::Read => {
                if st.holders & pbit != 0 {
                    return; // hit (dirty-by-us implies holder bit set too)
                }
                // Miss: fetch the line; a dirty owner supplies it and the
                // line becomes shared-clean (memory updated in passing).
                self.stats.line_fetches += 1;
                self.stats.total_bytes += line_bytes;
                if self.obs_on {
                    self.sink.record(ObsEvent {
                        at_ns: self.tick,
                        node: proc,
                        kind: ObsKind::CacheMiss { addr, line_bytes: self.config.line_size },
                    });
                    self.sink.record(ObsEvent {
                        at_ns: self.tick,
                        node: proc,
                        kind: ObsKind::BusTransfer { bytes: self.config.line_size },
                    });
                }
                st.dirty = None;
                if st.invalidated & pbit != 0 {
                    st.invalidated &= !pbit;
                    self.stats.refetches += 1;
                    self.stats.write_caused_bytes += line_bytes;
                } else {
                    self.stats.read_caused_bytes += line_bytes;
                }
                st.holders |= pbit;
            }
            RefKind::Write => {
                if self.config.protocol == Protocol::WriteThrough {
                    // Every write goes to memory: one bus word, and any
                    // other copy is invalidated. The writer keeps (or
                    // gains) a clean copy; nothing is ever dirty.
                    if st.holders & pbit == 0 {
                        self.stats.line_fetches += 1;
                        self.stats.total_bytes += line_bytes;
                        self.stats.write_caused_bytes += line_bytes;
                        if st.invalidated & pbit != 0 {
                            st.invalidated &= !pbit;
                            self.stats.refetches += 1;
                        }
                        if self.obs_on {
                            self.sink.record(ObsEvent {
                                at_ns: self.tick,
                                node: proc,
                                kind: ObsKind::CacheMiss {
                                    addr,
                                    line_bytes: self.config.line_size,
                                },
                            });
                            self.sink.record(ObsEvent {
                                at_ns: self.tick,
                                node: proc,
                                kind: ObsKind::BusTransfer { bytes: self.config.line_size },
                            });
                        }
                    }
                    self.stats.word_writes += 1;
                    self.stats.total_bytes += self.config.word_bytes as u64;
                    self.stats.write_caused_bytes += self.config.word_bytes as u64;
                    let others = st.holders & !pbit;
                    self.stats.invalidations += others.count_ones() as u64;
                    if self.obs_on {
                        self.sink.record(ObsEvent {
                            at_ns: self.tick,
                            node: proc,
                            kind: ObsKind::BusTransfer { bytes: self.config.word_bytes },
                        });
                        if others != 0 {
                            self.sink.record(ObsEvent {
                                at_ns: self.tick,
                                node: proc,
                                kind: ObsKind::Invalidation { addr, copies: others.count_ones() },
                            });
                        }
                    }
                    st.invalidated |= others;
                    st.holders = pbit;
                    st.dirty = None;
                    return;
                }
                if st.dirty == Some(proc) {
                    return; // exclusive dirty hit: pure cache write
                }
                if st.holders & pbit == 0 {
                    // Write miss: fetch the line first.
                    self.stats.line_fetches += 1;
                    self.stats.total_bytes += line_bytes;
                    self.stats.write_caused_bytes += line_bytes;
                    if st.invalidated & pbit != 0 {
                        st.invalidated &= !pbit;
                        self.stats.refetches += 1;
                    }
                    st.holders |= pbit;
                    if self.obs_on {
                        self.sink.record(ObsEvent {
                            at_ns: self.tick,
                            node: proc,
                            kind: ObsKind::CacheMiss { addr, line_bytes: self.config.line_size },
                        });
                        self.sink.record(ObsEvent {
                            at_ns: self.tick,
                            node: proc,
                            kind: ObsKind::BusTransfer { bytes: self.config.line_size },
                        });
                    }
                }
                // First write to a clean copy: bus word write announces it
                // and every other copy is invalidated.
                self.stats.word_writes += 1;
                self.stats.total_bytes += self.config.word_bytes as u64;
                self.stats.write_caused_bytes += self.config.word_bytes as u64;
                let others = st.holders & !pbit;
                self.stats.invalidations += others.count_ones() as u64;
                if self.obs_on {
                    self.sink.record(ObsEvent {
                        at_ns: self.tick,
                        node: proc,
                        kind: ObsKind::BusTransfer { bytes: self.config.word_bytes },
                    });
                    if others != 0 {
                        self.sink.record(ObsEvent {
                            at_ns: self.tick,
                            node: proc,
                            kind: ObsKind::Invalidation { addr, copies: others.count_ones() },
                        });
                    }
                }
                st.invalidated |= others;
                st.holders = pbit;
                st.dirty = Some(proc);
            }
        }
    }

    /// Processes an entire trace and returns the accumulated statistics.
    pub fn run(mut self, trace: &Trace) -> TrafficStats {
        debug_assert!(trace.is_sorted(), "trace must be time-ordered");
        for r in trace.refs() {
            self.tick = r.time;
            self.access(r.proc, r.addr, r.kind);
        }
        self.stats
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemRef;

    fn sim(line: u32) -> CoherenceSim {
        CoherenceSim::new(CoherenceConfig::with_line_size(line))
    }

    #[test]
    fn cold_read_fetches_once() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Read);
        s.access(0, 4, RefKind::Read); // same 8-byte line: hit
        assert_eq!(s.stats().line_fetches, 1);
        assert_eq!(s.stats().total_bytes, 8);
        assert_eq!(s.stats().read_caused_bytes, 8);
    }

    #[test]
    fn write_hit_on_clean_costs_one_word() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Read); // fetch
        s.access(0, 0, RefKind::Write); // word write, now dirty
        s.access(0, 4, RefKind::Write); // dirty hit: free
        assert_eq!(s.stats().word_writes, 1);
        assert_eq!(s.stats().total_bytes, 8 + 4);
    }

    #[test]
    fn cold_write_fetches_line_and_writes_word() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Write);
        assert_eq!(s.stats().line_fetches, 1);
        assert_eq!(s.stats().word_writes, 1);
        assert_eq!(s.stats().total_bytes, 8 + 4);
        assert_eq!(s.stats().write_caused_bytes, 12);
        assert_eq!(s.stats().read_caused_bytes, 0);
    }

    #[test]
    fn write_invalidates_other_copies_and_forces_refetch() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Read);
        s.access(1, 0, RefKind::Read);
        s.access(0, 0, RefKind::Write); // invalidates proc 1
        assert_eq!(s.stats().invalidations, 1);
        let before = s.stats().total_bytes;
        s.access(1, 0, RefKind::Read); // refetch
        assert_eq!(s.stats().refetches, 1);
        assert_eq!(s.stats().total_bytes, before + 8);
        // The refetch is write-caused.
        assert_eq!(s.stats().write_caused_bytes, 4 + 8);
    }

    #[test]
    fn dirty_line_read_by_other_becomes_shared() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Write); // proc 0 dirty
        s.access(1, 0, RefKind::Read); // supplied, both clean
        let bytes = s.stats().total_bytes;
        // Proc 0 writing again must now pay the word write again.
        s.access(0, 0, RefKind::Write);
        assert_eq!(s.stats().total_bytes, bytes + 4);
        assert_eq!(s.stats().invalidations, 1, "proc 1's copy invalidated");
    }

    #[test]
    fn ping_pong_writes_generate_per_iteration_traffic() {
        let mut s = sim(8);
        s.access(0, 0, RefKind::Write);
        s.access(1, 0, RefKind::Write);
        s.access(0, 0, RefKind::Write);
        s.access(1, 0, RefKind::Write);
        // Every ownership transfer refetches the line and word-writes.
        assert_eq!(s.stats().word_writes, 4);
        assert_eq!(s.stats().line_fetches, 4);
        assert_eq!(s.stats().refetches, 2);
    }

    #[test]
    fn false_sharing_grows_with_line_size() {
        // Proc 0 writes addr 0; proc 1 reads addr 28 repeatedly. With
        // 4-byte lines they never interact; with 32-byte lines every
        // write invalidates proc 1's copy.
        let make_trace = || -> Trace {
            let mut t = Trace::new();
            for i in 0..50u64 {
                t.push(MemRef::new(2 * i, 0, 0, RefKind::Write));
                t.push(MemRef::new(2 * i + 1, 1, 28, RefKind::Read));
            }
            t
        };
        let small = CoherenceSim::new(CoherenceConfig::with_line_size(4)).run(&make_trace());
        let large = CoherenceSim::new(CoherenceConfig::with_line_size(32)).run(&make_trace());
        assert!(
            large.total_bytes > 4 * small.total_bytes,
            "false sharing must inflate traffic: {} vs {}",
            large.total_bytes,
            small.total_bytes
        );
        assert!(large.refetches > 0);
        assert_eq!(small.refetches, 0);
    }

    #[test]
    fn write_fraction_reflects_churn() {
        let mut t = Trace::new();
        // One cold read, then a long write ping-pong.
        t.push(MemRef::new(0, 0, 0, RefKind::Read));
        for i in 0..100u64 {
            t.push(MemRef::new(i + 1, (i % 2) as u32, 0, RefKind::Write));
        }
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&t);
        assert!(stats.write_fraction() > 0.8, "churn trace must be write-dominated");
    }

    #[test]
    fn sink_counters_cross_check_traffic_stats() {
        use locus_obs::{names, SharedSink};
        let mut t = Trace::new();
        for i in 0..200u64 {
            t.push(MemRef::new(
                i,
                (i % 4) as u32,
                ((i * 7) % 96) as u32,
                if i % 3 == 0 { RefKind::Read } else { RefKind::Write },
            ));
        }
        for wt in [false, true] {
            let mut cfg = CoherenceConfig::with_line_size(8);
            if wt {
                cfg = cfg.write_through();
            }
            let sink = SharedSink::new();
            let stats = CoherenceSim::new(cfg).with_sink(Box::new(sink.clone())).run(&t);
            let m = sink.metrics_snapshot();
            assert_eq!(m.counter(names::BUS_BYTES), stats.total_bytes, "wt={wt}");
            assert_eq!(m.counter(names::CACHE_MISSES), stats.line_fetches, "wt={wt}");
            assert_eq!(m.counter(names::INVALIDATIONS), stats.invalidations, "wt={wt}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lines() {
        let _ = CoherenceConfig::with_line_size(12);
    }

    #[test]
    fn write_through_pays_per_write() {
        let mut s = CoherenceSim::new(CoherenceConfig::with_line_size(8).write_through());
        s.access(0, 0, RefKind::Write); // fetch + word
        s.access(0, 0, RefKind::Write); // word (no dirty state exists)
        s.access(0, 4, RefKind::Write); // word
        assert_eq!(s.stats().word_writes, 3);
        assert_eq!(s.stats().line_fetches, 1);
        assert_eq!(s.stats().total_bytes, 8 + 3 * 4);
    }

    #[test]
    fn write_through_invalidates_and_forces_refetch() {
        let mut s = CoherenceSim::new(CoherenceConfig::with_line_size(8).write_through());
        s.access(1, 0, RefKind::Read);
        s.access(0, 0, RefKind::Write);
        assert_eq!(s.stats().invalidations, 1);
        s.access(1, 0, RefKind::Read);
        assert_eq!(s.stats().refetches, 1);
    }

    #[test]
    fn write_through_never_cheaper_than_write_back_on_write_heavy_traces() {
        let mut t = Trace::new();
        for i in 0..200u64 {
            t.push(MemRef::new(
                i,
                (i % 4) as u32,
                ((i * 3) % 64) as u32 * 2,
                if i % 3 == 0 { RefKind::Read } else { RefKind::Write },
            ));
        }
        for line in [4u32, 8, 32] {
            let wb = CoherenceSim::new(CoherenceConfig::with_line_size(line)).run(&t);
            let wt =
                CoherenceSim::new(CoherenceConfig::with_line_size(line).write_through()).run(&t);
            assert!(
                wt.total_bytes >= wb.total_bytes,
                "line {line}: WT {} < WB {}",
                wt.total_bytes,
                wb.total_bytes
            );
            assert!(wt.word_writes >= wb.word_writes);
        }
    }
}
