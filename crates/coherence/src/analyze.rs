//! Trace analyses: the line-size sweep of Table 3, for the legacy WBI
//! bus and for any registered memory backend.

use crate::model::{build_memory_model, MemoryConfig, MemoryOutcome};
use crate::protocol::{CoherenceConfig, CoherenceSim, TrafficStats};
use crate::trace::Trace;

/// Runs the WBI protocol over `trace` once per line size and returns
/// `(line_size, stats)` pairs — the rows of Table 3.
///
/// This is the paper's original sweep and stays pinned to the snooped
/// WBI bus; [`traffic_by_backend`] generalizes it to any registered
/// backend with byte-identical results for `bus-wbi`.
pub fn traffic_by_line_size(trace: &Trace, line_sizes: &[u32]) -> Vec<(u32, TrafficStats)> {
    line_sizes
        .iter()
        .map(|&ls| {
            let stats = CoherenceSim::new(CoherenceConfig::with_line_size(ls)).run(trace);
            (ls, stats)
        })
        .collect()
}

/// Runs the registered backend `backend` over `trace` once per line size
/// and returns `(line_size, outcome)` rows — Table 3 generalized to any
/// memory system. The processor count is taken from the trace (largest
/// referencing processor + 1), so identical traces are priced over
/// identical machines regardless of backend.
///
/// Returns an error naming the known backends when `backend` is not
/// registered.
pub fn traffic_by_backend(
    backend: &str,
    trace: &Trace,
    line_sizes: &[u32],
) -> Result<Vec<(u32, MemoryOutcome)>, String> {
    let n_procs = trace.refs().iter().map(|r| r.proc + 1).max().unwrap_or(1);
    line_sizes
        .iter()
        .map(|&ls| {
            let model = build_memory_model(backend, MemoryConfig::paper(n_procs, ls))?;
            Ok((ls, model.run(trace)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemRef, RefKind};

    /// A churn-heavy trace: several processors repeatedly read a region
    /// that one processor keeps writing — the access pattern of the
    /// unlocked shared cost array.
    fn churn_trace() -> Trace {
        let mut t = Trace::new();
        let mut time = 0u64;
        for round in 0..30u32 {
            for p in 0..4u32 {
                for cell in 0..32u32 {
                    t.push(MemRef::new(time, p, cell * 2, RefKind::Read));
                    time += 1;
                }
            }
            // The "winning" processor updates a few cells.
            for i in 0..6u32 {
                t.push(MemRef::new(time, round % 4, ((round * 5 + i) % 32) * 2, RefKind::Write));
                time += 1;
            }
        }
        t
    }

    #[test]
    fn traffic_increases_with_line_size() {
        // Table 3's headline effect: bigger lines, more bytes.
        let trace = churn_trace();
        let rows = traffic_by_line_size(&trace, &[4, 8, 16, 32]);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[1].1.total_bytes > w[0].1.total_bytes,
                "line {} -> {} bytes, line {} -> {} bytes",
                w[0].0,
                w[0].1.total_bytes,
                w[1].0,
                w[1].1.total_bytes
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let trace = churn_trace();
        let a = traffic_by_line_size(&trace, &[4, 32]);
        let b = traffic_by_line_size(&trace, &[4, 32]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_yields_zero_traffic() {
        let rows = traffic_by_line_size(&Trace::new(), &[4, 8]);
        for (_, stats) in rows {
            assert_eq!(stats.total_bytes, 0);
        }
    }

    #[test]
    fn backend_sweep_on_bus_wbi_matches_the_legacy_sweep() {
        let trace = churn_trace();
        let legacy = traffic_by_line_size(&trace, &[4, 8, 16, 32]);
        let general = traffic_by_backend("bus-wbi", &trace, &[4, 8, 16, 32]).expect("registered");
        assert_eq!(legacy.len(), general.len());
        for ((ls_a, stats), (ls_b, outcome)) in legacy.iter().zip(general.iter()) {
            assert_eq!(ls_a, ls_b);
            assert_eq!(*stats, outcome.stats, "line {ls_a}");
        }
    }

    #[test]
    fn backend_sweep_rejects_unknown_backends() {
        assert!(traffic_by_backend("nope", &churn_trace(), &[8]).is_err());
    }

    #[test]
    fn dls_rows_are_flat_across_line_sizes() {
        let rows = traffic_by_backend("dls", &churn_trace(), &[4, 8, 16, 32]).expect("registered");
        for w in rows.windows(2) {
            assert_eq!(w[0].1.stats.total_bytes, w[1].1.stats.total_bytes);
        }
    }
}
