//! Shared-data reference traces (the Tango interface, paper §2.2).
//!
//! "These traces contain all shared data references made by the program
//! during execution. For each reference, the time, address, and
//! referencing processor are recorded."
//!
//! Beyond the paper's minimal triple, each reference also carries the
//! synchronization context the race analyser needs: the barrier-delimited
//! *epoch* in which the access happened, the *wire* being routed when it
//! happened, and (for writes) the signed *delta* the store applied to the
//! cost cell. Producers that predate the analyser can leave the extras at
//! their defaults via [`MemRef::new`].

/// Whether a reference reads or writes shared data.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RefKind {
    /// Load from shared memory.
    Read,
    /// Store to shared memory.
    Write,
}

/// How urgently the memory system must service a reference.
///
/// The router's accesses split into two classes: rip-up/commit stores on
/// the wire currently being routed gate every other processor's view of
/// the cost array (the route decision is unusable until they land), while
/// candidate-sweep loads are speculative, prefetch-like traffic — most
/// candidates lose. Criticality-aware backends service [`Critical`]
/// requests ahead of queued [`Background`] ones (arXiv:1606.05933).
///
/// [`Critical`]: Criticality::Critical
/// [`Background`]: Criticality::Background
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum Criticality {
    /// Speculative / streaming traffic; can absorb queueing delay.
    #[default]
    Background,
    /// The issuing processor (and its readers) are blocked on this.
    Critical,
}

/// One shared-data reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Logical time of the reference (ns of the emulated execution).
    pub time: u64,
    /// Referencing processor.
    pub proc: u32,
    /// Byte address within the shared region.
    pub addr: u32,
    /// Read or write.
    pub kind: RefKind,
    /// Barrier-delimited synchronization epoch (routing iteration).
    /// Accesses in different epochs are ordered by the barrier between
    /// them; accesses in the same epoch on different processors are not.
    pub epoch: u32,
    /// Wire being routed when the access happened, or [`MemRef::NO_WIRE`]
    /// when the access is not attributable to a single wire.
    pub wire: u32,
    /// Signed value change applied by a write (+1 commit, -1 rip-up);
    /// zero for reads.
    pub delta: i8,
    /// Service-priority class of the reference (see [`Criticality`]).
    pub crit: Criticality,
}

impl MemRef {
    /// Sentinel for [`MemRef::wire`] when no wire is attributable.
    pub const NO_WIRE: u32 = u32::MAX;

    /// A reference with no synchronization context (epoch 0, no wire,
    /// zero delta) — the paper's minimal (time, proc, addr, kind) record.
    pub fn new(time: u64, proc: u32, addr: u32, kind: RefKind) -> Self {
        MemRef {
            time,
            proc,
            addr,
            kind,
            epoch: 0,
            wire: Self::NO_WIRE,
            delta: 0,
            crit: Criticality::Background,
        }
    }

    /// Sets the barrier epoch.
    pub fn with_epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the attributable wire.
    pub fn with_wire(mut self, wire: u32) -> Self {
        self.wire = wire;
        self
    }

    /// Sets the write delta.
    pub fn with_delta(mut self, delta: i8) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the service-priority class.
    pub fn with_criticality(mut self, crit: Criticality) -> Self {
        self.crit = crit;
        self
    }

    /// Whether the reference is service-critical.
    #[inline]
    pub fn is_critical(&self) -> bool {
        self.crit == Criticality::Critical
    }
}

/// A time-ordered sequence of shared references.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    refs: Vec<MemRef>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace { refs: Vec::with_capacity(n) }
    }

    /// Appends a reference. References may be pushed out of order (the
    /// emulator interleaves processors); call [`Self::sort_by_time`]
    /// before analysis.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        self.refs.push(r);
    }

    /// Stable-sorts the trace by time (ties keep insertion order, which
    /// preserves each processor's program order).
    pub fn sort_by_time(&mut self) {
        self.refs.sort_by_key(|r| r.time);
    }

    /// Whether the trace is time-ordered.
    pub fn is_sorted(&self) -> bool {
        self.refs.windows(2).all(|w| w[0].time <= w[1].time)
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The references in order.
    pub fn refs(&self) -> &[MemRef] {
        &self.refs
    }

    /// Count of write references.
    pub fn write_count(&self) -> usize {
        self.refs.iter().filter(|r| r.kind == RefKind::Write).count()
    }
}

impl FromIterator<MemRef> for Trace {
    fn from_iter<T: IntoIterator<Item = MemRef>>(iter: T) -> Self {
        Trace { refs: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(time: u64, proc: u32, addr: u32, kind: RefKind) -> MemRef {
        MemRef::new(time, proc, addr, kind)
    }

    #[test]
    fn push_and_sort() {
        let mut t = Trace::new();
        t.push(r(5, 0, 0, RefKind::Read));
        t.push(r(1, 1, 4, RefKind::Write));
        assert!(!t.is_sorted());
        t.sort_by_time();
        assert!(t.is_sorted());
        assert_eq!(t.refs()[0].time, 1);
    }

    #[test]
    fn stable_sort_preserves_program_order_at_equal_times() {
        let mut t = Trace::new();
        t.push(r(3, 0, 0, RefKind::Read));
        t.push(r(3, 0, 4, RefKind::Write));
        t.sort_by_time();
        assert_eq!(t.refs()[0].addr, 0);
        assert_eq!(t.refs()[1].addr, 4);
    }

    #[test]
    fn stable_sort_preserves_order_across_procs_at_equal_times() {
        // Three procs all touch at t=7, interleaved with earlier refs.
        let mut t = Trace::new();
        t.push(r(9, 0, 0, RefKind::Read));
        t.push(r(7, 2, 8, RefKind::Write));
        t.push(r(7, 0, 12, RefKind::Read));
        t.push(r(7, 1, 16, RefKind::Write));
        t.push(r(1, 1, 20, RefKind::Read));
        t.sort_by_time();
        assert!(t.is_sorted());
        // The three t=7 refs keep their relative insertion order.
        let at7: Vec<u32> = t.refs().iter().filter(|r| r.time == 7).map(|r| r.addr).collect();
        assert_eq!(at7, vec![8, 12, 16]);
    }

    #[test]
    fn is_sorted_on_empty_and_single_traces() {
        let empty = Trace::new();
        assert!(empty.is_sorted());
        assert!(empty.is_empty());
        let single: Trace = [r(42, 3, 0, RefKind::Write)].into_iter().collect();
        assert!(single.is_sorted());
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn write_count() {
        let t: Trace =
            [r(0, 0, 0, RefKind::Read), r(1, 0, 0, RefKind::Write), r(2, 1, 4, RefKind::Write)]
                .into_iter()
                .collect();
        assert_eq!(t.write_count(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn write_count_matches_refkind_partition() {
        // write_count + read count must always equal len, and must agree
        // with a direct RefKind scan.
        let t: Trace = (0..32)
            .map(|i| {
                r(i, i as u32 % 4, (i as u32 % 8) * 2, {
                    if i % 3 == 0 {
                        RefKind::Write
                    } else {
                        RefKind::Read
                    }
                })
            })
            .collect();
        let writes = t.refs().iter().filter(|r| r.kind == RefKind::Write).count();
        let reads = t.refs().iter().filter(|r| r.kind == RefKind::Read).count();
        assert_eq!(t.write_count(), writes);
        assert_eq!(writes + reads, t.len());
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let plain = MemRef::new(10, 1, 4, RefKind::Read);
        assert_eq!(plain.epoch, 0);
        assert_eq!(plain.wire, MemRef::NO_WIRE);
        assert_eq!(plain.delta, 0);
        assert_eq!(plain.crit, Criticality::Background);
        assert!(!plain.is_critical());
        let full = plain
            .with_epoch(3)
            .with_wire(17)
            .with_delta(-1)
            .with_criticality(Criticality::Critical);
        assert_eq!(full.epoch, 3);
        assert_eq!(full.wire, 17);
        assert_eq!(full.delta, -1);
        assert!(full.is_critical());
        // Builders leave the base triple untouched.
        assert_eq!((full.time, full.proc, full.addr, full.kind), (10, 1, 4, RefKind::Read));
    }
}
