//! Shared-data reference traces (the Tango interface, paper §2.2).
//!
//! "These traces contain all shared data references made by the program
//! during execution. For each reference, the time, address, and
//! referencing processor are recorded."

/// Whether a reference reads or writes shared data.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RefKind {
    /// Load from shared memory.
    Read,
    /// Store to shared memory.
    Write,
}

/// One shared-data reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Logical time of the reference (ns of the emulated execution).
    pub time: u64,
    /// Referencing processor.
    pub proc: u32,
    /// Byte address within the shared region.
    pub addr: u32,
    /// Read or write.
    pub kind: RefKind,
}

/// A time-ordered sequence of shared references.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    refs: Vec<MemRef>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace { refs: Vec::with_capacity(n) }
    }

    /// Appends a reference. References may be pushed out of order (the
    /// emulator interleaves processors); call [`Self::sort_by_time`]
    /// before analysis.
    #[inline]
    pub fn push(&mut self, r: MemRef) {
        self.refs.push(r);
    }

    /// Stable-sorts the trace by time (ties keep insertion order, which
    /// preserves each processor's program order).
    pub fn sort_by_time(&mut self) {
        self.refs.sort_by_key(|r| r.time);
    }

    /// Whether the trace is time-ordered.
    pub fn is_sorted(&self) -> bool {
        self.refs.windows(2).all(|w| w[0].time <= w[1].time)
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The references in order.
    pub fn refs(&self) -> &[MemRef] {
        &self.refs
    }

    /// Count of write references.
    pub fn write_count(&self) -> usize {
        self.refs.iter().filter(|r| r.kind == RefKind::Write).count()
    }
}

impl FromIterator<MemRef> for Trace {
    fn from_iter<T: IntoIterator<Item = MemRef>>(iter: T) -> Self {
        Trace { refs: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(time: u64, proc: u32, addr: u32, kind: RefKind) -> MemRef {
        MemRef { time, proc, addr, kind }
    }

    #[test]
    fn push_and_sort() {
        let mut t = Trace::new();
        t.push(r(5, 0, 0, RefKind::Read));
        t.push(r(1, 1, 4, RefKind::Write));
        assert!(!t.is_sorted());
        t.sort_by_time();
        assert!(t.is_sorted());
        assert_eq!(t.refs()[0].time, 1);
    }

    #[test]
    fn stable_sort_preserves_program_order_at_equal_times() {
        let mut t = Trace::new();
        t.push(r(3, 0, 0, RefKind::Read));
        t.push(r(3, 0, 4, RefKind::Write));
        t.sort_by_time();
        assert_eq!(t.refs()[0].addr, 0);
        assert_eq!(t.refs()[1].addr, 4);
    }

    #[test]
    fn write_count() {
        let t: Trace =
            [r(0, 0, 0, RefKind::Read), r(1, 0, 0, RefKind::Write), r(2, 1, 4, RefKind::Write)]
                .into_iter()
                .collect();
        assert_eq!(t.write_count(), 2);
        assert_eq!(t.len(), 3);
    }
}
