//! # locus-coherence
//!
//! A Write-Back-with-Invalidate (WBI) cache-coherence and bus-traffic
//! model in the style of Archibald & Baer (ACM TOCS 1986), as used for
//! the shared-memory side of Martonosi & Gupta (ICPP 1989) §5.2.
//!
//! The model consumes **shared-data reference traces** (the output of the
//! Tango-style tracer in `locus-shmem`): a time-ordered list of
//! `(time, processor, address, read|write)` records. Caches are infinite
//! (the paper's stated assumption), so all traffic is coherence traffic:
//!
//! 1. a processor's first access to a line misses and fetches it
//!    (`line_size` bytes on the bus);
//! 2. the first write to a clean line puts a word write on the bus
//!    (`word_bytes`) and invalidates every other copy;
//! 3. a processor re-accessing a line that was invalidated refetches it
//!    (`line_size` bytes) — the dominant term under write churn, which is
//!    why the paper measures >80% of bytes as write-caused.
//!
//! [`analyze::traffic_by_line_size`] reproduces Table 3's line-size sweep.
//!
//! The WBI bus is one backend of several: the [`model`] module holds the
//! [`model::MemoryModel`] trait and a name→constructor registry with the
//! snooped bus (`bus-wbi`, `bus-wt`), a directory-based MSI protocol
//! (`directory`), and a directoryless shared LLC (`dls`), all priced over
//! the mesh machine with FIFO and criticality-aware contention.

pub mod analyze;
pub mod model;
pub mod protocol;
pub mod trace;

pub use analyze::{traffic_by_backend, traffic_by_line_size};
pub use model::{
    build_memory_model, memory_registry, model_for_config, BusModel, DirectoryModel, DlsModel,
    MemoryConfig, MemoryModel, MemoryModelEntry, MemoryOutcome, ProcCounts,
};
pub use protocol::{
    CoherenceConfig, CoherenceSim, DirectoryParams, DlsParams, Protocol, TrafficStats,
};
pub use trace::{Criticality, MemRef, RefKind, Trace};
