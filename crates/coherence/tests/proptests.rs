//! Property-based tests for the WBI coherence model.

use locus_coherence::{CoherenceConfig, CoherenceSim, MemRef, RefKind, Trace};
use proptest::prelude::*;

fn arb_trace(max_procs: u32, max_addr: u32) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0..max_procs, 0..max_addr, any::<bool>()), 0..400).prop_map(|refs| {
        refs.into_iter()
            .enumerate()
            .map(|(i, (proc, addr, is_write))| {
                // Word-align addresses like real cost-array accesses.
                MemRef::new(
                    i as u64,
                    proc,
                    addr * 2,
                    if is_write { RefKind::Write } else { RefKind::Read },
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn byte_attribution_is_exhaustive(trace in arb_trace(8, 256), line in 0u32..4) {
        let line_size = 4u32 << line; // 4, 8, 16, 32
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(
            stats.total_bytes,
            stats.read_caused_bytes + stats.write_caused_bytes,
            "every byte is read- or write-caused"
        );
    }

    #[test]
    fn transfer_counts_are_consistent(trace in arb_trace(8, 256), line in 0u32..4) {
        let line_size = 4u32 << line;
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(
            stats.total_bytes,
            stats.line_fetches * line_size as u64 + stats.word_writes * 4
        );
        prop_assert!(stats.refetches <= stats.line_fetches);
        prop_assert!(stats.refetches <= stats.invalidations);
    }

    #[test]
    fn model_is_deterministic(trace in arb_trace(8, 256)) {
        let a = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        let b = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn single_processor_never_invalidates(trace in arb_trace(1, 256), line in 0u32..4) {
        let line_size = 4u32 << line;
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(stats.invalidations, 0);
        prop_assert_eq!(stats.refetches, 0);
        // With an infinite cache, one processor fetches each line at most
        // once.
        let distinct_lines = {
            let mut lines: Vec<u32> =
                trace.refs().iter().map(|r| r.addr / line_size).collect();
            lines.sort_unstable();
            lines.dedup();
            lines.len() as u64
        };
        prop_assert!(stats.line_fetches <= distinct_lines);
    }

    #[test]
    fn doubling_line_size_never_increases_fetch_count(trace in arb_trace(8, 256)) {
        // Fetch *count* (not bytes) is monotone non-increasing in line
        // size: a larger line always covers a superset of addresses, so
        // a hit at size L is still a hit at 2L under the same protocol
        // events... which is not strictly true under invalidation, so we
        // assert the weaker, always-true bound: at most the reference
        // count.
        let refs = trace.len() as u64;
        for line_size in [4u32, 8, 16, 32] {
            let stats =
                CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
            prop_assert!(stats.line_fetches <= refs);
            prop_assert!(stats.word_writes <= trace.write_count() as u64);
        }
    }

    #[test]
    fn reads_alone_cost_one_fetch_per_line_per_proc(
        procs in 1u32..8,
        addrs in proptest::collection::vec(0u32..128, 1..100),
    ) {
        // A read-only workload has no coherence traffic beyond cold
        // misses: fetches == distinct (proc, line) pairs.
        let mut trace = Trace::new();
        for (i, &a) in addrs.iter().enumerate() {
            trace.push(MemRef::new(i as u64, i as u32 % procs, a * 2, RefKind::Read));
        }
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        let mut pairs: Vec<(u32, u32)> = trace
            .refs()
            .iter()
            .map(|r| (r.proc, r.addr / 8))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(stats.line_fetches, pairs.len() as u64);
        prop_assert_eq!(stats.word_writes, 0);
        prop_assert_eq!(stats.write_caused_bytes, 0);
    }
}
