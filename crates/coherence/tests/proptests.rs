//! Property-based tests for the WBI coherence model and the registered
//! memory-system backends.

use locus_coherence::{
    build_memory_model, memory_registry, CoherenceConfig, CoherenceSim, Criticality, MemRef,
    MemoryConfig, RefKind, Trace,
};
use proptest::prelude::*;

fn arb_trace(max_procs: u32, max_addr: u32) -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0..max_procs, 0..max_addr, any::<bool>()), 0..400).prop_map(|refs| {
        refs.into_iter()
            .enumerate()
            .map(|(i, (proc, addr, is_write))| {
                // Word-align addresses like real cost-array accesses.
                MemRef::new(
                    i as u64,
                    proc,
                    addr * 2,
                    if is_write { RefKind::Write } else { RefKind::Read },
                )
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn byte_attribution_is_exhaustive(trace in arb_trace(8, 256), line in 0u32..4) {
        let line_size = 4u32 << line; // 4, 8, 16, 32
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(
            stats.total_bytes,
            stats.read_caused_bytes + stats.write_caused_bytes,
            "every byte is read- or write-caused"
        );
    }

    #[test]
    fn transfer_counts_are_consistent(trace in arb_trace(8, 256), line in 0u32..4) {
        let line_size = 4u32 << line;
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(
            stats.total_bytes,
            stats.line_fetches * line_size as u64 + stats.word_writes * 4
        );
        prop_assert!(stats.refetches <= stats.line_fetches);
        prop_assert!(stats.refetches <= stats.invalidations);
    }

    #[test]
    fn model_is_deterministic(trace in arb_trace(8, 256)) {
        let a = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        let b = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn single_processor_never_invalidates(trace in arb_trace(1, 256), line in 0u32..4) {
        let line_size = 4u32 << line;
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
        prop_assert_eq!(stats.invalidations, 0);
        prop_assert_eq!(stats.refetches, 0);
        // With an infinite cache, one processor fetches each line at most
        // once.
        let distinct_lines = {
            let mut lines: Vec<u32> =
                trace.refs().iter().map(|r| r.addr / line_size).collect();
            lines.sort_unstable();
            lines.dedup();
            lines.len() as u64
        };
        prop_assert!(stats.line_fetches <= distinct_lines);
    }

    #[test]
    fn doubling_line_size_never_increases_fetch_count(trace in arb_trace(8, 256)) {
        // Fetch *count* (not bytes) is monotone non-increasing in line
        // size: a larger line always covers a superset of addresses, so
        // a hit at size L is still a hit at 2L under the same protocol
        // events... which is not strictly true under invalidation, so we
        // assert the weaker, always-true bound: at most the reference
        // count.
        let refs = trace.len() as u64;
        for line_size in [4u32, 8, 16, 32] {
            let stats =
                CoherenceSim::new(CoherenceConfig::with_line_size(line_size)).run(&trace);
            prop_assert!(stats.line_fetches <= refs);
            prop_assert!(stats.word_writes <= trace.write_count() as u64);
        }
    }

    #[test]
    fn reads_alone_cost_one_fetch_per_line_per_proc(
        procs in 1u32..8,
        addrs in proptest::collection::vec(0u32..128, 1..100),
    ) {
        // A read-only workload has no coherence traffic beyond cold
        // misses: fetches == distinct (proc, line) pairs.
        let mut trace = Trace::new();
        for (i, &a) in addrs.iter().enumerate() {
            trace.push(MemRef::new(i as u64, i as u32 % procs, a * 2, RefKind::Read));
        }
        let stats = CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace);
        let mut pairs: Vec<(u32, u32)> = trace
            .refs()
            .iter()
            .map(|r| (r.proc, r.addr / 8))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(stats.line_fetches, pairs.len() as u64);
        prop_assert_eq!(stats.word_writes, 0);
        prop_assert_eq!(stats.write_caused_bytes, 0);
    }

    #[test]
    fn every_backend_agrees_on_per_proc_counts(trace in arb_trace(6, 128), line in 0u32..3) {
        // The backends disagree on traffic, never on what the processors
        // did: per-processor read/write counts are a property of the
        // trace alone.
        let line_size = 4u32 << line;
        let n_procs = trace.refs().iter().map(|r| r.proc + 1).max().unwrap_or(1);
        let mut per_backend = Vec::new();
        for e in memory_registry() {
            let out = (e.build)(MemoryConfig::paper(n_procs, line_size)).run(&trace);
            let reads: u64 = out.per_proc.iter().map(|p| p.reads).sum();
            let writes: u64 = out.per_proc.iter().map(|p| p.writes).sum();
            prop_assert_eq!(reads + writes, trace.len() as u64, "{}", e.name);
            per_backend.push((e.name, out.per_proc));
        }
        for pair in per_backend.windows(2) {
            prop_assert_eq!(
                &pair[0].1, &pair[1].1,
                "{} and {} disagree on per-proc counts", pair[0].0, pair[1].0
            );
        }
    }

    #[test]
    fn single_processor_traces_have_no_coherence_traffic_on_any_backend(
        trace in arb_trace(1, 128),
        line in 0u32..3,
    ) {
        // With one processor there is nobody to invalidate: every backend
        // must report zero coherence events and zero invalidation
        // transport, whatever the line size.
        for e in memory_registry() {
            let out = (e.build)(MemoryConfig::paper(1, 4u32 << line)).run(&trace);
            prop_assert_eq!(out.coherence_events(), 0, "{}", e.name);
            prop_assert_eq!(out.invalidation_traffic_bytes, 0, "{}", e.name);
        }
    }

    #[test]
    fn directory_unicast_never_exceeds_bus_broadcast(
        trace in arb_trace(8, 64),
        line in 0u32..3,
    ) {
        // The directory sends each invalidation to the actual holders
        // only; the bus broadcasts every announced write to all P-1
        // other caches. Same line semantics, so data traffic is
        // identical and the unicast transport can never cost more.
        let line_size = 4u32 << line;
        let n_procs = trace.refs().iter().map(|r| r.proc + 1).max().unwrap_or(1);
        let cfg = MemoryConfig::paper(n_procs, line_size);
        let bus = build_memory_model("bus-wbi", cfg).unwrap().run(&trace);
        let dir = build_memory_model("directory", cfg).unwrap().run(&trace);
        prop_assert_eq!(bus.stats.clone(), dir.stats.clone());
        prop_assert!(dir.invalidation_traffic_bytes <= bus.invalidation_traffic_bytes);
    }

    #[test]
    fn criticality_tags_affect_scheduling_not_traffic(
        refs in proptest::collection::vec((0u32..6, 0u32..64, any::<bool>(), any::<bool>()), 1..300),
    ) {
        // Tagging requests critical reorders the service queue; it must
        // never change what the memory system transfers, and
        // critical-first service must never leave critical requests
        // waiting longer than FIFO did.
        let mut plain = Trace::new();
        let mut tagged = Trace::new();
        for (i, &(proc, addr, is_write, crit)) in refs.iter().enumerate() {
            let kind = if is_write { RefKind::Write } else { RefKind::Read };
            let r = MemRef::new(i as u64, proc, addr * 2, kind);
            plain.push(r);
            tagged.push(if crit { r.with_criticality(Criticality::Critical) } else { r });
        }
        for e in memory_registry() {
            let a = (e.build)(MemoryConfig::paper(6, 8)).run(&plain);
            let b = (e.build)(MemoryConfig::paper(6, 8)).run(&tagged);
            prop_assert_eq!(a.stats.clone(), b.stats.clone(), "{}", e.name);
            prop_assert_eq!(a.invalidation_traffic_bytes, b.invalidation_traffic_bytes);
            prop_assert!(
                b.critical_first.critical.total_wait_ns <= b.fifo.critical.total_wait_ns,
                "{}: critical-first hurt critical requests", e.name
            );
        }
    }
}
