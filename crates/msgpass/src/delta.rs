//! The delta array (§4.1).
//!
//! "We add a new data structure, known as the delta array. The delta
//! array has the same dimensions as the cost array, and keeps track of
//! changes made to the cost array between updates."
//!
//! Rip-up decrements and re-route increments accumulate here; cells where
//! they cancel hold zero and are not transmitted — the mechanism behind
//! the paper's traffic cancellation argument (§5.2).

use locus_circuit::{GridCell, Rect};

/// A signed change overlay with the cost array's dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaArray {
    channels: u16,
    grids: u16,
    cells: Vec<i16>,
}

impl DeltaArray {
    /// Creates a zeroed delta array.
    pub fn new(channels: u16, grids: u16) -> Self {
        assert!(channels > 0 && grids > 0, "delta array dimensions must be nonzero");
        DeltaArray { channels, grids, cells: vec![0; channels as usize * grids as usize] }
    }

    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        debug_assert!(cell.channel < self.channels && cell.x < self.grids);
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    /// Records a change of `delta` at `cell`.
    #[inline]
    pub fn record(&mut self, cell: GridCell, delta: i16) {
        let i = self.index(cell);
        self.cells[i] += delta;
    }

    /// Current accumulated delta at `cell`.
    #[inline]
    pub fn get(&self, cell: GridCell) -> i16 {
        self.cells[self.index(cell)]
    }

    /// Bounding box of all nonzero cells within `rect`, or `None` if the
    /// region is clean. This is the scan the sending processor performs
    /// before an update ("the sender scans the delta array for changes",
    /// §4.3.1); the caller charges `rect.area()` cells of scan time.
    pub fn changes_in(&self, rect: Rect) -> Option<Rect> {
        let mut bbox: Option<Rect> = None;
        for c in rect.c_lo..=rect.c_hi {
            let base = c as usize * self.grids as usize;
            for x in rect.x_lo..=rect.x_hi {
                if self.cells[base + x as usize] != 0 {
                    let cell = GridCell::new(c, x);
                    match &mut bbox {
                        Some(b) => b.expand_to(cell),
                        None => bbox = Some(Rect::cell(cell)),
                    }
                }
            }
        }
        bbox
    }

    /// Extracts the deltas inside `rect` (row-major) and zeroes them —
    /// the payload of a `SendRmtData` packet or a `ReqLocData` response.
    pub fn extract_and_clear(&mut self, rect: Rect) -> Vec<i16> {
        let mut out = Vec::with_capacity(rect.area() as usize);
        for cell in rect.cells() {
            let i = self.index(cell);
            out.push(self.cells[i]);
            self.cells[i] = 0;
        }
        out
    }

    /// Whether every cell in `rect` is zero.
    pub fn is_clean_in(&self, rect: Rect) -> bool {
        self.changes_in(rect).is_none()
    }

    /// Whether the whole array is zero.
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(c: u16, x: u16) -> GridCell {
        GridCell::new(c, x)
    }

    #[test]
    fn record_and_cancel() {
        let mut d = DeltaArray::new(4, 10);
        d.record(cell(1, 3), 1);
        d.record(cell(1, 3), -1);
        assert!(d.is_zero(), "rip-up and re-route on the same cell must cancel");
    }

    #[test]
    fn changes_in_finds_tight_bbox() {
        let mut d = DeltaArray::new(4, 10);
        d.record(cell(1, 3), 1);
        d.record(cell(2, 7), -1);
        let whole = Rect::new(0, 3, 0, 9);
        assert_eq!(d.changes_in(whole), Some(Rect::new(1, 2, 3, 7)));
    }

    #[test]
    fn changes_in_respects_rect_boundary() {
        let mut d = DeltaArray::new(4, 10);
        d.record(cell(0, 0), 1);
        d.record(cell(3, 9), 1);
        // Scanning only the middle region sees neither change.
        assert_eq!(d.changes_in(Rect::new(1, 2, 2, 7)), None);
        // Scanning the top-right region sees one.
        assert_eq!(d.changes_in(Rect::new(2, 3, 5, 9)), Some(Rect::cell(cell(3, 9))));
    }

    #[test]
    fn extract_and_clear_empties_the_rect() {
        let mut d = DeltaArray::new(4, 10);
        d.record(cell(1, 2), 3);
        d.record(cell(1, 3), -2);
        let rect = Rect::new(1, 1, 2, 3);
        let vals = d.extract_and_clear(rect);
        assert_eq!(vals, vec![3, -2]);
        assert!(d.is_zero());
    }

    #[test]
    fn extract_preserves_outside_cells() {
        let mut d = DeltaArray::new(4, 10);
        d.record(cell(0, 0), 5);
        d.record(cell(2, 2), 7);
        let _ = d.extract_and_clear(Rect::new(0, 0, 0, 0));
        assert_eq!(d.get(cell(2, 2)), 7);
        assert_eq!(d.get(cell(0, 0)), 0);
    }

    #[test]
    fn clean_region_reports_clean() {
        let mut d = DeltaArray::new(4, 10);
        assert!(d.is_clean_in(Rect::new(0, 3, 0, 9)));
        d.record(cell(2, 2), 1);
        assert!(!d.is_clean_in(Rect::new(0, 3, 0, 9)));
        assert!(d.is_clean_in(Rect::new(0, 1, 0, 9)));
    }
}
