//! The per-processor router actor.
//!
//! Each mesh node runs one [`RouterNode`]: it routes its statically
//! assigned wires against its local cost-array replica, keeps the delta
//! array of changes it has made to foreign regions, emits and installs
//! update packets according to the configured [`UpdateSchedule`], and
//! participates in a simple termination protocol (every node reports
//! `Finished` to node 0, which broadcasts `Terminate` once all reports
//! are in — finished nodes keep serving requests until then).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use locus_circuit::{Circuit, Rect, WireId};
use locus_mesh::{Envelope, Node, Outbox, SimTime, Step};
use locus_obs::{EventKind, SharedSink};
use locus_router::engine::{IterationDriver, ObsEmitter, Stamp};
use locus_router::router::route_wire_scratch;
use locus_router::{assign, CostArray, EvalScratch, ProcId, RegionMap, Route, WorkStats};

use crate::config::{MsgPassConfig, PacketStructure, WireSource};
use crate::delta::DeltaArray;
use crate::packet::{Packet, PacketCounts, WireEvent};
use crate::reliable::{Frame, Transport, ACK_BYTES};

/// Coordinator node for the termination protocol.
const COORDINATOR: ProcId = 0;

/// One replica-vs-truth comparison taken at an audit stamp (enabled by
/// [`MsgPassConfig::audit_every`]); the raw material of the staleness
/// histograms in `locus-analysis`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaSnapshot {
    /// Auditing processor.
    pub proc: ProcId,
    /// Simulated time of the audit.
    pub at_ns: u64,
    /// Wires this node had routed when the audit ran.
    pub wires_routed: u32,
    /// Cells whose replica value differed from the truth.
    pub diverged_cells: u32,
    /// Sum of absolute per-cell divergences.
    pub total_abs_divergence: u64,
    /// Largest absolute per-cell divergence.
    pub max_abs_divergence: u32,
    /// Summed age of the diverged cells (ns since the truth cell last
    /// changed) — the "cells × age" staleness integrand.
    pub stale_age_sum_ns: u64,
}

impl ReplicaSnapshot {
    /// Mean age of the diverged cells (0 when nothing diverged).
    pub fn mean_age_ns(&self) -> u64 {
        if self.diverged_cells == 0 {
            0
        } else {
            self.stale_age_sum_ns / self.diverged_cells as u64
        }
    }
}

/// Recovery-protocol counters for one node. All zero when
/// [`MsgPassConfig::recovery`] is off; merged across nodes into the
/// run outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken (periodic, at-finish, and per adopted wire).
    pub checkpoints_taken: u64,
    /// Total serialized checkpoint bytes (charged to simulated time).
    pub checkpoint_bytes: u64,
    /// Heartbeat rounds sent (coordinator: one broadcast counts once).
    pub heartbeats_sent: u64,
    /// Peers this node declared dead after a silent suspect window.
    pub nodes_declared_dead: u64,
    /// Orphaned wires the coordinator redistributed to live nodes.
    pub wires_reassigned: u64,
    /// Reassigned wires this node adopted (self-targets included).
    pub wires_adopted: u64,
    /// Restart rollbacks performed (one per restart with lost work).
    pub rollbacks: u64,
    /// Routes ripped back out because they post-dated the checkpoint.
    pub wires_rolled_back: u64,
    /// Coordinator takeovers this node performed.
    pub coordinator_failovers: u64,
    /// Wires routed by more than one node (resolved first-writer-wins
    /// at collection; counted there, not per node).
    pub duplicate_routes: u64,
}

impl RecoveryStats {
    /// Accumulates `other` into `self` field by field.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.checkpoints_taken += other.checkpoints_taken;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.heartbeats_sent += other.heartbeats_sent;
        self.nodes_declared_dead += other.nodes_declared_dead;
        self.wires_reassigned += other.wires_reassigned;
        self.wires_adopted += other.wires_adopted;
        self.rollbacks += other.rollbacks;
        self.wires_rolled_back += other.wires_rolled_back;
        self.coordinator_failovers += other.coordinator_failovers;
        self.duplicate_routes += other.duplicate_routes;
    }
}

/// One processor of the message-passing router.
pub struct RouterNode {
    proc: ProcId,
    circuit: Arc<Circuit>,
    regions: Arc<RegionMap>,
    config: MsgPassConfig,
    my_region: Rect,
    mesh_neighbors: Vec<ProcId>,
    my_wires: Vec<WireId>,

    /// Metrics-only global truth, shared by every node and updated as
    /// routes commit (the kernel steps nodes in simulated-time order).
    /// Routing decisions never read it; it exists so the occupancy factor
    /// can be measured against the *actual* congestion at routing time,
    /// as the paper's §3 definition requires — a stale replica would
    /// under-report exactly the congestion staleness causes.
    oracle: Arc<Mutex<CostArray>>,
    /// Per-cell simulated time the truth last changed (allocated only
    /// when auditing; shared by all nodes like the oracle itself).
    truth_touched: Option<Arc<Mutex<Vec<u64>>>>,
    /// Staleness snapshots taken at the configured audit stamps.
    audits: Vec<ReplicaSnapshot>,

    replica: CostArray,
    /// Reusable evaluation buffers: the kernel allocates nothing per
    /// candidate, and the replica's prefix caches serve its span queries.
    scratch: EvalScratch,
    delta: DeltaArray,
    /// Bounding box of changes to the node's own region since its last
    /// `SendLocData` (kept incrementally; no scan needed).
    own_dirty: Option<Rect>,

    /// The shared execution ledger: route slots (indexed by position in
    /// `my_wires`), dynamically granted routes, work counters, per-
    /// iteration occupancy, and routing-event emission.
    driver: IterationDriver,
    iteration: usize,
    wire_idx: usize,
    wires_routed_count: u32,

    /// Routing events accumulated since the last wire-based update
    /// (only populated under [`PacketStructure::WireBased`]).
    wire_events: Vec<WireEvent>,

    // Dynamic wire distribution (§4.2).
    /// Master only: next wire id to hand out.
    dyn_pool_next: usize,
    /// Worker: a request is in flight.
    awaiting_grant: bool,
    /// Worker: a granted wire not yet routed.
    granted: Option<WireId>,

    // Receiver-initiated requester state.
    request_cursor: usize,
    touch_count: Vec<u32>,
    touch_bbox: Vec<Option<Rect>>,
    outstanding: u32,

    // Owner-side ReqLocData trigger state.
    reqs_from: Vec<u32>,

    // Termination protocol.
    finished_routing: bool,
    /// Virtual time of the step that completed this node's last routing
    /// work (static assignment or adopted backlog). The run-level
    /// maximum is the routing span — everything past it is update
    /// exchange, checkpoint, and termination tail.
    routing_done_ns: u64,
    finished_sent: bool,
    finished_seen: usize,
    terminate: bool,

    // Recovery protocol (all inert when `config.recovery` is `None`).
    /// Who this node currently believes coordinates termination and
    /// reassignment (starts at [`COORDINATOR`]; moves on failover).
    coordinator: ProcId,
    /// Simulated time at which the next heartbeat round is due.
    next_heartbeat_at: u64,
    /// Last simulated time any envelope arrived from each peer.
    last_heard: Vec<u64>,
    /// Peers declared dead (never resurrected within a run).
    presumed_dead: Vec<bool>,
    /// Dead peers whose orphaned wires were already redistributed.
    reassigned: Vec<bool>,
    /// Coordinator only: peers that reported all their work finished.
    finished_flags: Vec<bool>,
    /// Coordinator only: each peer's last checkpointed progress (wires
    /// into its static assignment that are durable).
    ckpt_known: Vec<u32>,
    /// Own durable progress: wires into `my_wires` covered by the last
    /// checkpoint (work past it dies with a crash).
    ckpt_progress: u32,
    /// Wires adopted from dead peers, awaiting routing.
    adopted: VecDeque<WireId>,
    /// The complete static assignment (every processor's wire list),
    /// recomputed locally so any node can redistribute a dead peer's
    /// wires without asking anyone. `Some` iff recovery is on.
    full_assignment: Option<Vec<Vec<WireId>>>,
    /// Coordinator only: wires this node granted to each peer through
    /// `Reassign`. If a grantee later dies, these orphans are not in its
    /// static assignment, so they must be re-granted from this ledger.
    granted_log: Vec<Vec<WireId>>,
    /// Computation time owed but not yet charged to the simulated clock.
    /// Under recovery a long busy interval is drained in heartbeat-sized
    /// chunks so the node keeps heartbeating (and acking) while it
    /// computes — the discrete-event analogue of an interrupt-driven
    /// network stack. Charging a whole wire's routing time atomically
    /// would silence the node past the suspect window on large circuits
    /// and get it falsely declared dead.
    pending_busy: u64,
    /// Recovery counters.
    recovery_stats: RecoveryStats,

    // Metrics.
    sent: PacketCounts,

    /// End-to-end reliable-delivery state (a zero-cost pass-through when
    /// `config.reliability` is `None`).
    transport: Transport,
    /// While lingering after `Done` (reliability only): the simulated
    /// time at which the node may actually stop, pushed back by any
    /// late-arriving traffic it must re-ack.
    linger_until: Option<u64>,

    /// Simulated time of the step being executed (for event stamps).
    now_ns: u64,
}

impl RouterNode {
    /// Creates the actor for processor `proc` with its assigned wires.
    /// All nodes of one run must share the same `oracle`.
    pub fn new(
        proc: ProcId,
        circuit: Arc<Circuit>,
        regions: Arc<RegionMap>,
        config: MsgPassConfig,
        my_wires: Vec<WireId>,
        oracle: Arc<Mutex<CostArray>>,
    ) -> Self {
        let n_procs = regions.n_procs();
        let (channels, grids) = regions.surface();
        let n_wires = my_wires.len();
        let full_assignment =
            config.recovery.map(|_| assign(&circuit, &regions, config.assignment).wires_per_proc);
        RouterNode {
            proc,
            my_region: regions.region(proc),
            mesh_neighbors: regions.neighbors(proc),
            oracle,
            truth_touched: None,
            audits: Vec::new(),
            circuit,
            regions,
            config,
            my_wires,
            replica: CostArray::new(channels, grids),
            scratch: EvalScratch::default(),
            delta: DeltaArray::new(channels, grids),
            own_dirty: None,
            driver: IterationDriver::new(n_wires),
            iteration: 0,
            wire_idx: 0,
            wires_routed_count: 0,
            wire_events: Vec::new(),
            dyn_pool_next: 0,
            awaiting_grant: false,
            granted: None,
            request_cursor: 0,
            touch_count: vec![0; n_procs],
            touch_bbox: vec![None; n_procs],
            outstanding: 0,
            reqs_from: vec![0; n_procs],
            finished_routing: false,
            routing_done_ns: 0,
            finished_sent: false,
            finished_seen: 0,
            terminate: false,
            coordinator: COORDINATOR,
            next_heartbeat_at: 0,
            last_heard: vec![0; n_procs],
            presumed_dead: vec![false; n_procs],
            reassigned: vec![false; n_procs],
            finished_flags: vec![false; n_procs],
            ckpt_known: vec![0; n_procs],
            ckpt_progress: 0,
            adopted: VecDeque::new(),
            full_assignment,
            granted_log: vec![Vec::new(); n_procs],
            pending_busy: 0,
            recovery_stats: RecoveryStats::default(),
            sent: PacketCounts::default(),
            transport: Transport::new(n_procs, config.reliability),
            linger_until: None,
            now_ns: 0,
        }
    }

    /// Routes this node's routing events (wire commits, rip-ups,
    /// iteration phases) into `sink`.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.driver.set_obs(ObsEmitter::new(Box::new(sink)).for_node(self.proc as u32));
        self
    }

    /// Attaches the shared per-cell truth-change timestamps (one entry
    /// per cost cell, simulated ns). All nodes of one run must share the
    /// same map; required when `config.audit_every` is set so audits can
    /// age their diverged cells.
    pub fn with_truth_touched(mut self, touched: Arc<Mutex<Vec<u64>>>) -> Self {
        self.truth_touched = Some(touched);
        self
    }

    /// Marks this node done with routing and reports its kernel counters
    /// (candidates swept; the replica's prefix-cache activity).
    fn mark_finished_routing(&mut self) {
        self.finished_routing = true;
        self.routing_done_ns = self.now_ns;
        if self.driver.obs_on() {
            let ps = self.replica.prefix_stats();
            self.driver.kernel_stats(Stamp::At(self.now_ns), ps);
        }
    }

    /// Final routes with their wire ids (valid after the run completes).
    pub fn routes(&self) -> impl Iterator<Item = (WireId, &Route)> + '_ {
        self.my_wires
            .iter()
            .zip(self.driver.slots())
            .filter_map(|(&w, r)| r.as_ref().map(|r| (w, r)))
            .chain(self.driver.dynamic_routes().iter().map(|(w, r)| (*w, r)))
    }

    /// Occupancy factor contribution of the final iteration.
    pub fn occupancy_factor(&self) -> u64 {
        self.driver.last_occupancy()
    }

    /// Occupancy factor contribution of every iteration.
    pub fn occupancy_by_iteration(&self) -> &[u64] {
        self.driver.occupancy_by_iteration()
    }

    /// Work counters.
    pub fn work(&self) -> &WorkStats {
        self.driver.work()
    }

    /// Per-kind packet counts sent by this node.
    pub fn sent_counts(&self) -> &PacketCounts {
        &self.sent
    }

    /// This node's reliable-transport counters (all zero when the
    /// protocol is disabled).
    pub fn reliable_stats(&self) -> crate::reliable::ReliableStats {
        self.transport.stats()
    }

    /// This node's recovery counters (all zero when recovery is off).
    /// Virtual time of this node's last completed routing work.
    pub fn routing_done_ns(&self) -> u64 {
        self.routing_done_ns
    }

    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Wires into this node's static assignment covered by its last
    /// checkpoint (its durable progress).
    pub fn checkpoint_progress(&self) -> u32 {
        self.ckpt_progress
    }

    /// Final routes as [`RouterNode::routes`], but truncated to the last
    /// checkpoint when this node `crashed`: routes committed after it
    /// were volatile and died with the node (an adopter re-routed those
    /// wires). Adopted-wire routes are checkpointed as they commit, so
    /// they always survive.
    pub fn surviving_routes(&self, crashed: bool) -> impl Iterator<Item = (WireId, &Route)> + '_ {
        let limit = if crashed { self.ckpt_progress as usize } else { self.my_wires.len() };
        self.my_wires
            .iter()
            .take(limit)
            .zip(self.driver.slots())
            .filter_map(|(&w, r)| r.as_ref().map(|r| (w, r)))
            .chain(self.driver.dynamic_routes().iter().map(|(w, r)| (*w, r)))
    }

    /// The node's final replica (for divergence diagnostics).
    pub fn replica(&self) -> &CostArray {
        &self.replica
    }

    /// Staleness snapshots taken at the configured audit stamps.
    pub fn replica_audits(&self) -> &[ReplicaSnapshot] {
        &self.audits
    }

    /// Stamps the truth-change time of every cell `route` covers (no-op
    /// unless auditing is on).
    fn touch_truth(&self, route: &Route) {
        let Some(touched) = &self.truth_touched else {
            return;
        };
        let (_, grids) = self.regions.surface();
        let mut touched = touched.lock().expect("truth touch lock");
        for &cell in route.cells() {
            touched[cell.channel as usize * grids as usize + cell.x as usize] = self.now_ns;
        }
    }

    /// Diffs the replica against the truth when an audit stamp is due,
    /// recording a [`ReplicaSnapshot`] and emitting a `ReplicaAudit`
    /// event.
    fn maybe_audit_replica(&mut self) {
        let Some(every) = self.config.audit_every else {
            return;
        };
        if !self.wires_routed_count.is_multiple_of(every) {
            return;
        }
        use locus_router::CostView;
        let (channels, grids) = self.regions.surface();
        let mut diverged = 0u32;
        let mut total = 0u64;
        let mut max = 0u32;
        let mut age_sum = 0u64;
        {
            let oracle = self.oracle.lock().expect("oracle lock");
            let touched = self.truth_touched.as_ref().map(|t| t.lock().expect("truth touch lock"));
            for c in 0..channels {
                for x in 0..grids {
                    let cell = locus_circuit::GridCell::new(c, x);
                    let d = (self.replica.cost_at(cell) as i64 - oracle.cost_at(cell) as i64)
                        .unsigned_abs() as u32;
                    if d > 0 {
                        diverged += 1;
                        total += d as u64;
                        max = max.max(d);
                        if let Some(touched) = &touched {
                            let idx = c as usize * grids as usize + x as usize;
                            age_sum += self.now_ns.saturating_sub(touched[idx]);
                        }
                    }
                }
            }
        }
        let snap = ReplicaSnapshot {
            proc: self.proc,
            at_ns: self.now_ns,
            wires_routed: self.wires_routed_count,
            diverged_cells: diverged,
            total_abs_divergence: total,
            max_abs_divergence: max,
            stale_age_sum_ns: age_sum,
        };
        self.driver.emit_event(
            Stamp::At(self.now_ns),
            EventKind::ReplicaAudit {
                diverged_cells: diverged,
                max_divergence: max,
                mean_age_ns: snap.mean_age_ns(),
            },
        );
        self.audits.push(snap);
    }

    /// Whether the node completed all its iterations.
    pub fn finished(&self) -> bool {
        self.finished_routing
    }

    /// Queues `packet` to `to`, recording stats; returns the modelled
    /// packet-assembly time. With reliability on the packet is framed
    /// with a sequence number and its retransmission timer armed; the
    /// per-kind counts record the application payload while the wire
    /// carries the framed size.
    fn send(&mut self, outbox: &mut Outbox<Frame>, to: ProcId, packet: Packet) -> u64 {
        debug_assert_ne!(to, self.proc);
        self.sent.record(&packet);
        let frame = self.transport.wrap(to, packet, self.now_ns);
        let bytes = frame.payload_bytes();
        outbox.send(to, bytes, frame);
        bytes as u64 * self.config.send_per_byte_ns
    }

    /// Queues `packet` unframed ([`Frame::Raw`]), bypassing the
    /// reliability protocol. Heartbeats ride raw: they are periodic, so
    /// a lost one is repaired by the next, and they must not occupy
    /// retransmission state (a dead peer would accumulate it forever).
    fn send_raw(&mut self, outbox: &mut Outbox<Frame>, to: ProcId, packet: Packet) -> u64 {
        debug_assert_ne!(to, self.proc);
        self.sent.record(&packet);
        let frame = Frame::Raw(packet);
        let bytes = frame.payload_bytes();
        outbox.send(to, bytes, frame);
        bytes as u64 * self.config.send_per_byte_ns
    }

    /// Queues a cumulative ack to `to`.
    fn send_ack(&mut self, outbox: &mut Outbox<Frame>, to: ProcId, cum_seq: u32) -> u64 {
        self.driver
            .emit_event(Stamp::At(self.now_ns), EventKind::AckSent { dst: to as u32, cum_seq });
        self.sent.record_ack(ACK_BYTES);
        outbox.send(to, ACK_BYTES, Frame::Ack { cum_seq });
        ACK_BYTES as u64 * self.config.send_per_byte_ns
    }

    /// Queues one retransmission of `packet` (attempt `attempt`) to `to`.
    fn resend(
        &mut self,
        outbox: &mut Outbox<Frame>,
        to: ProcId,
        seq: u32,
        attempt: u32,
        packet: Packet,
    ) -> u64 {
        self.driver.emit_event(
            Stamp::At(self.now_ns),
            EventKind::PacketRetransmitted { dst: to as u32, seq, attempt },
        );
        self.sent.record(&packet);
        let frame = Frame::Data { seq, packet };
        let bytes = frame.payload_bytes();
        outbox.send(to, bytes, frame);
        bytes as u64 * self.config.send_per_byte_ns
    }

    /// Grows the own-region dirty box to include `rect`.
    fn mark_own_dirty(&mut self, rect: Rect) {
        self.own_dirty = Some(match self.own_dirty {
            Some(d) => d.union(&rect),
            None => rect,
        });
    }

    /// Applies one routed/ripped cell change to local state: replicas
    /// always change; foreign cells also enter the delta array, own cells
    /// the dirty box.
    fn apply_cell_change(&mut self, cell: locus_circuit::GridCell, delta: i32) {
        self.replica.add(cell, delta);
        if self.my_region.contains(cell) {
            self.mark_own_dirty(Rect::cell(cell));
        } else {
            self.delta.record(cell, delta as i16);
        }
    }

    /// Handles one received packet; returns modelled processing time and
    /// queues any responses.
    fn handle_packet(&mut self, from: ProcId, packet: Packet, outbox: &mut Outbox<Frame>) -> u64 {
        let mut busy = 0u64;
        match packet {
            Packet::LocData { rect, values, response } => {
                // Absolute data for a region owned by the sender (or at
                // least not by us): replace our stale view.
                debug_assert!(
                    !rect.intersects(&self.my_region),
                    "node {} received absolute data for its own region",
                    self.proc
                );
                self.replica.install(rect, &values);
                // The owner's view cannot include changes we made but
                // have not yet sent; re-apply our pending deltas so the
                // install does not erase our own wires from our view.
                for cell in rect.cells() {
                    let d = self.delta.get(cell);
                    if d != 0 {
                        self.replica.add(cell, d as i32);
                    }
                }
                busy += rect.area() * self.config.scan_per_cell_ns;
                if response {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
            }
            Packet::RmtData { rect, deltas, response: _ } => {
                // Deltas applied by a remote processor to our region.
                debug_assert!(
                    self.my_region.intersection(&rect) == Some(rect),
                    "RmtData rect {rect} not inside own region {}",
                    self.my_region
                );
                self.replica.apply_deltas(rect, &deltas);
                self.mark_own_dirty(rect);
            }
            Packet::ReqRmtData { rect } => {
                // We are the owner: answer with absolute data.
                let r = rect
                    .intersection(&self.my_region)
                    .expect("ReqRmtData must target the owner's region");
                let values = self.replica.extract(r);
                busy += r.area() * self.config.scan_per_cell_ns;
                busy +=
                    self.send(outbox, from, Packet::LocData { rect: r, values, response: true });
                // ReqLocData trigger: a processor that keeps requesting
                // our region has been routing in it (§4.3.3).
                if let Some(threshold) = self.config.schedule.req_loc_data {
                    self.reqs_from[from] += 1;
                    if self.reqs_from[from] >= threshold {
                        self.reqs_from[from] = 0;
                        busy +=
                            self.send(outbox, from, Packet::ReqLocData { rect: self.my_region });
                    }
                }
            }
            Packet::ReqLocData { rect } => {
                // The owner of `rect` wants the deltas we hold against it.
                busy += rect.area() * self.config.scan_per_cell_ns;
                if let Some(bbox) = self.delta.changes_in(rect) {
                    let deltas = self.delta.extract_and_clear(bbox);
                    busy += self.send(
                        outbox,
                        from,
                        Packet::RmtData { rect: bbox, deltas, response: true },
                    );
                }
            }
            Packet::WireRequest => {
                // We are the assignment processor: hand out the next
                // wire, or report exhaustion. Requests are only seen
                // between our own wires — the §4.2 latency the paper
                // rejected this scheme over.
                debug_assert_eq!(self.proc, COORDINATOR);
                let wire = if self.dyn_pool_next < self.circuit.wire_count() {
                    let w = self.dyn_pool_next as u32;
                    self.dyn_pool_next += 1;
                    Some(w)
                } else {
                    None
                };
                busy += self.send(outbox, from, Packet::WireGrant { wire });
            }
            Packet::WireGrant { wire } => {
                self.awaiting_grant = false;
                match wire {
                    Some(w) => self.granted = Some(w as WireId),
                    None => {
                        self.mark_finished_routing();
                        self.driver.close_iteration();
                    }
                }
            }
            Packet::WireData { events } => {
                // Replay the sender's routing events against our view.
                for ev in events {
                    if !ev.ripped.is_empty() {
                        let ripped = Route::from_segments(ev.ripped);
                        for &cell in ripped.cells() {
                            self.replica.add(cell, -1);
                            if self.my_region.contains(cell) {
                                self.mark_own_dirty(Rect::cell(cell));
                            }
                        }
                    }
                    let routed = Route::from_segments(ev.routed);
                    for &cell in routed.cells() {
                        self.replica.add(cell, 1);
                        if self.my_region.contains(cell) {
                            self.mark_own_dirty(Rect::cell(cell));
                        }
                    }
                }
            }
            Packet::Finished => {
                if self.config.recovery.is_some() {
                    if self.proc == self.coordinator {
                        self.finished_flags[from] = true;
                    }
                    // Otherwise: a report addressed to this node while it
                    // was coordinator-apparent, since superseded; the
                    // sender will re-report via StatusReport.
                } else {
                    debug_assert_eq!(self.proc, COORDINATOR);
                    self.finished_seen += 1;
                }
            }
            Packet::Terminate => {
                self.terminate = true;
            }
            Packet::Heartbeat => {
                // Liveness is tracked per envelope in `step`. Beyond
                // that, only coordinators broadcast heartbeats, so one
                // from a lower rank than the believed coordinator is a
                // competing claim that wins (the successor rule elects
                // the lowest live rank): a split brain from cascaded
                // false suspicions re-converges on the lowest claimant,
                // and a deposed-but-alive coordinator demotes itself
                // here. The adopter re-reports its finish state so the
                // restored coordinator's ledger completes.
                if self.config.recovery.is_some() && from < self.coordinator {
                    self.presumed_dead[from] = false;
                    self.coordinator = from;
                    self.finished_sent = false;
                }
            }
            Packet::Checkpoint { progress, bytes: _ } => {
                if self.proc == self.coordinator {
                    self.ckpt_known[from] = self.ckpt_known[from].max(progress);
                }
            }
            Packet::Reassign { wires } => {
                self.recovery_stats.wires_adopted += wires.len() as u64;
                self.adopted.extend(wires.iter().map(|&w| w as WireId));
                // Fresh work un-finishes this node; it re-reports once
                // the adopted queue drains.
                self.finished_sent = false;
            }
            Packet::NewCoordinator => {
                if from != self.proc {
                    // Every rank below the announcer must be dead or the
                    // announcer would not have won the succession.
                    for p in 0..from {
                        if p != self.proc {
                            self.presumed_dead[p] = true;
                        }
                    }
                    self.coordinator = from;
                    busy += self.send(
                        outbox,
                        from,
                        Packet::StatusReport {
                            progress: self.ckpt_progress,
                            finished: self.finished_routing && self.adopted.is_empty(),
                        },
                    );
                }
            }
            Packet::StatusReport { progress, finished } => {
                if self.proc == self.coordinator {
                    self.ckpt_known[from] = self.ckpt_known[from].max(progress);
                    if finished {
                        self.finished_flags[from] = true;
                    }
                }
            }
        }
        busy
    }

    /// Issues receiver-initiated `ReqRmtData` requests for the upcoming
    /// window of wires (the paper requests five wires ahead, §4.3.3).
    fn issue_requests(&mut self, outbox: &mut Outbox<Frame>) -> u64 {
        let Some(threshold) = self.config.schedule.req_rmt_data else {
            return 0;
        };
        let mut busy = 0u64;
        let window_end =
            (self.wire_idx + self.config.request_ahead as usize).min(self.my_wires.len());
        while self.request_cursor < window_end {
            let wire = self.circuit.wire(self.my_wires[self.request_cursor]);
            let bbox = wire.bounding_box();
            for p in self.regions.owners_intersecting(bbox) {
                if p == self.proc {
                    continue;
                }
                let in_region = bbox
                    .intersection(&self.regions.region(p))
                    .expect("owner intersects the bbox by construction");
                self.touch_count[p] += 1;
                self.touch_bbox[p] = Some(match self.touch_bbox[p] {
                    Some(b) => b.union(&in_region),
                    None => in_region,
                });
                if self.touch_count[p] >= threshold {
                    let rect = self.touch_bbox[p].take().expect("bbox recorded with count");
                    self.touch_count[p] = 0;
                    busy += self.send(outbox, p, Packet::ReqRmtData { rect });
                    self.outstanding += 1;
                }
            }
            self.request_cursor += 1;
        }
        busy
    }

    /// Emits any due sender-initiated updates for the configured packet
    /// structure; returns the modelled assembly time.
    fn emit_sender_updates(&mut self, outbox: &mut Outbox<Frame>) -> u64 {
        let mut busy = 0u64;
        // Sender-initiated updates (§4.3.2): only if something changed.
        // The payload depends on the configured packet structure
        // (§4.3.1): bounding box (default), full region, or wire-based.
        match self.config.structure {
            PacketStructure::WireBased => {
                // Events replace both SendLocData and SendRmtData; they
                // are flushed on the SendRmtData cadence to every
                // processor whose region any event touches.
                let n = self
                    .config
                    .schedule
                    .send_rmt_data
                    .expect("validated: WireBased requires send_rmt_data");
                if self.wires_routed_count.is_multiple_of(n) && !self.wire_events.is_empty() {
                    let events = std::mem::take(&mut self.wire_events);
                    let mut bbox: Option<Rect> = None;
                    for ev in &events {
                        for seg in ev.ripped.iter().chain(&ev.routed) {
                            let b = seg.bounding_box();
                            bbox = Some(match bbox {
                                Some(acc) => acc.union(&b),
                                None => b,
                            });
                        }
                    }
                    let bbox = bbox.expect("events are non-empty");
                    for p in self.regions.owners_intersecting(bbox) {
                        if p == self.proc {
                            continue;
                        }
                        busy += self.send(outbox, p, Packet::WireData { events: events.clone() });
                    }
                }
            }
            PacketStructure::BoundingBox | PacketStructure::FullRegion => {
                let full = self.config.structure == PacketStructure::FullRegion;
                if let Some(n) = self.config.schedule.send_loc_data {
                    if self.wires_routed_count.is_multiple_of(n) {
                        if let Some(dirty) = self.own_dirty.take() {
                            let rect = if full { self.my_region } else { dirty };
                            let values = self.replica.extract(rect);
                            if !full {
                                busy += rect.area() * self.config.scan_per_cell_ns;
                            }
                            for nb in self.mesh_neighbors.clone() {
                                busy += self.send(
                                    outbox,
                                    nb,
                                    Packet::LocData {
                                        rect,
                                        values: values.clone(),
                                        response: false,
                                    },
                                );
                            }
                        }
                    }
                }
                if let Some(n) = self.config.schedule.send_rmt_data {
                    if self.wires_routed_count.is_multiple_of(n) {
                        for p in 0..self.regions.n_procs() {
                            if p == self.proc {
                                continue;
                            }
                            let region = self.regions.region(p);
                            if full {
                                if !self.delta.is_clean_in(region) {
                                    let deltas = self.delta.extract_and_clear(region);
                                    busy += self.send(
                                        outbox,
                                        p,
                                        Packet::RmtData { rect: region, deltas, response: false },
                                    );
                                }
                            } else {
                                busy += region.area() * self.config.scan_per_cell_ns;
                                if let Some(bbox) = self.delta.changes_in(region) {
                                    let deltas = self.delta.extract_and_clear(bbox);
                                    busy += self.send(
                                        outbox,
                                        p,
                                        Packet::RmtData { rect: bbox, deltas, response: false },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        busy
    }

    /// Rips up (if re-routing) and routes the next wire; emits any due
    /// sender-initiated updates. Returns modelled work time.
    fn route_next_wire(&mut self, outbox: &mut Outbox<Frame>) -> u64 {
        let mut busy = self.issue_requests(outbox);
        let idx = self.wire_idx;
        let wire_id = self.my_wires[idx];
        let stamp = Stamp::At(self.now_ns);
        if idx == 0 {
            self.driver.phase_begin(stamp);
        }

        // Rip up the previous iteration's route (§3).
        let mut ripped_segments: Vec<locus_router::Segment> = Vec::new();
        if let Some(old) = self.driver.rip_up(idx, wire_id, stamp) {
            busy += old.len() as u64 * self.config.cell_write_ns;
            self.oracle.lock().expect("oracle lock").remove_route(&old);
            self.touch_truth(&old);
            if self.config.structure == PacketStructure::WireBased {
                ripped_segments = old.segments().to_vec();
            }
            for &cell in old.cells() {
                self.apply_cell_change(cell, -1);
            }
        }

        // Evaluate against the (possibly stale) replica.
        let wire = self.circuit.wire(wire_id).clone();
        let eval = route_wire_scratch(
            &self.replica,
            &wire,
            self.config.params.channel_overshoot,
            &mut self.scratch,
        );
        busy += eval.cells_examined * self.config.cell_eval_ns;
        busy += eval.route.len() as u64 * self.config.cell_write_ns;
        // Occupancy factor: the chosen path's cost against the true
        // global state at routing time (§3) — the decision above saw
        // only the replica.
        let cost_at_decision = {
            use locus_router::CostView;
            let mut oracle = self.oracle.lock().expect("oracle lock");
            let cost = oracle.route_cost(&eval.route);
            oracle.add_route(&eval.route);
            cost
        };
        self.touch_truth(&eval.route);

        for &cell in eval.route.cells() {
            self.apply_cell_change(cell, 1);
        }
        if self.config.structure == PacketStructure::WireBased {
            self.wire_events.push(WireEvent {
                ripped: ripped_segments,
                routed: eval.route.segments().to_vec(),
            });
        }
        self.driver.commit(idx, wire_id, eval, cost_at_decision, stamp);

        self.wires_routed_count += 1;
        self.maybe_audit_replica();

        busy += self.emit_sender_updates(outbox);

        // Advance the program counter.
        self.wire_idx += 1;
        let progressed = self.wire_idx as u32;
        if self.wire_idx == self.my_wires.len() {
            self.driver.phase_end(stamp);
            self.driver.close_iteration();
            self.iteration += 1;
            self.wire_idx = 0;
            self.request_cursor = 0;
            if self.iteration == self.config.params.iterations {
                self.mark_finished_routing();
            }
        }
        if let Some(rc) = self.config.recovery {
            // Validation pins recovery to a single iteration, so
            // `progressed` is this node's total static progress. The
            // at-finish checkpoint makes a finished-then-crashed node's
            // full route set durable.
            if self.finished_routing || progressed.is_multiple_of(rc.checkpoint_every) {
                busy += self.take_checkpoint(progressed, outbox);
            }
        }
        busy
    }
}

impl RouterNode {
    /// Persists the node's routing state: charges the serialized size of
    /// its owned cost shard plus the progress record to simulated time,
    /// advances the durable progress mark, and ships the progress record
    /// to the coordinator so reassignment after a crash starts from here.
    fn take_checkpoint(&mut self, progress: u32, outbox: &mut Outbox<Frame>) -> u64 {
        let rc = self.config.recovery.expect("checkpoint requires recovery");
        // Owned shard at 2 bytes per cell, plus an 8-byte progress record.
        let bytes = self.my_region.area() * 2 + 8;
        let mut busy = bytes * rc.checkpoint_per_byte_ns;
        self.ckpt_progress = progress;
        self.recovery_stats.checkpoints_taken += 1;
        self.recovery_stats.checkpoint_bytes += bytes;
        self.driver
            .emit_event(Stamp::At(self.now_ns), EventKind::CheckpointTaken { bytes: bytes as u32 });
        if self.proc == self.coordinator {
            self.ckpt_known[self.proc] = progress;
        } else {
            busy += self.send(
                outbox,
                self.coordinator,
                Packet::Checkpoint { progress, bytes: bytes as u32 },
            );
        }
        busy
    }

    /// One recovery round: emit a due heartbeat, declare silent peers
    /// dead, and (as a worker) fail over when the coordinator has gone
    /// silent. Pure no-op when recovery is off.
    fn recovery_tick(&mut self, outbox: &mut Outbox<Frame>) -> u64 {
        let Some(rc) = self.config.recovery else {
            return 0;
        };
        let mut busy = 0u64;
        // Succession invariant: the coordinator is the lowest live
        // rank. A node that finds itself ranked *below* its believed
        // coordinator got there through crossed failover claims — the
        // higher rank declared this node dead while it was merely
        // slow. This node is alive and lower, so the role is its;
        // announcing the claim demotes the higher claimant.
        if self.proc < self.coordinator {
            self.coordinator = self.proc;
            busy += self.become_coordinator(outbox);
        }
        if self.now_ns >= self.next_heartbeat_at {
            self.next_heartbeat_at = self.now_ns + rc.heartbeat_ns;
            self.recovery_stats.heartbeats_sent += 1;
            if self.proc == self.coordinator {
                // Broadcast to presumed-dead peers too: heartbeats are
                // raw and cheap, a truly dead peer just drops them, and
                // a falsely-suspected rival coordinator must hear this
                // claim to demote itself (split-brain convergence).
                for p in 0..self.regions.n_procs() {
                    if p != self.proc {
                        busy += self.send_raw(outbox, p, Packet::Heartbeat);
                    }
                }
            } else {
                busy += self.send_raw(outbox, self.coordinator, Packet::Heartbeat);
            }
        }
        let window = rc.suspect_window_ns();
        if self.proc == self.coordinator {
            for p in 0..self.regions.n_procs() {
                if p == self.proc || self.presumed_dead[p] {
                    continue;
                }
                if self.now_ns.saturating_sub(self.last_heard[p]) > window {
                    self.presumed_dead[p] = true;
                    self.recovery_stats.nodes_declared_dead += 1;
                    busy += self.reassign_wires_of(p, outbox);
                }
            }
        } else if !self.presumed_dead[self.coordinator]
            && self.now_ns.saturating_sub(self.last_heard[self.coordinator]) > window
        {
            // The coordinator has gone silent: the successor is the
            // lowest presumed-live rank. Workers only ever suspect
            // coordinators, so every live node's successor converges.
            self.presumed_dead[self.coordinator] = true;
            self.recovery_stats.nodes_declared_dead += 1;
            let successor = (0..self.regions.n_procs())
                .find(|&p| !self.presumed_dead[p])
                .expect("this node itself is alive");
            self.coordinator = successor;
            if successor == self.proc {
                busy += self.become_coordinator(outbox);
            }
        }
        busy
    }

    /// Takes over coordinator duty: announce to every peer (the deposed
    /// coordinator included — if it later restarts, the retransmitted
    /// announcement demotes it), collect status reports, and
    /// redistribute every known-dead peer's orphans.
    fn become_coordinator(&mut self, outbox: &mut Outbox<Frame>) -> u64 {
        let mut busy = 0u64;
        self.recovery_stats.coordinator_failovers += 1;
        self.driver.emit_event(
            Stamp::At(self.now_ns),
            EventKind::CoordinatorFailover { new_coordinator: self.proc as u32 },
        );
        // Fresh detection baseline: as a worker this node only heard
        // peers through data traffic, so its silence clocks are stale by
        // up to a routing stretch. Without a grace period the new
        // coordinator instantly declares every quiet-but-live worker
        // dead and orphans whatever had been granted to them.
        for t in self.last_heard.iter_mut() {
            *t = self.now_ns;
        }
        // Redistribute before announcing: streams are FIFO, so each
        // adopter holds its new work before it answers `NewCoordinator`,
        // and its `StatusReport` cannot claim a finish it no longer has.
        // The dead coordinator's checkpoint ledger died with it, so its
        // orphans are redistributed from `ckpt_known` — zero unless it
        // ever reported here, which re-routes already-durable work; the
        // duplicates resolve first-writer-wins at collection.
        for d in 0..self.regions.n_procs() {
            if self.presumed_dead[d] && !self.reassigned[d] {
                busy += self.reassign_wires_of(d, outbox);
            }
        }
        for p in 0..self.regions.n_procs() {
            if p != self.proc {
                busy += self.send(outbox, p, Packet::NewCoordinator);
            }
        }
        busy
    }

    /// Redistributes the dead peer's post-checkpoint wires round-robin
    /// over the live nodes (this node included). Idempotent per peer.
    fn reassign_wires_of(&mut self, dead: ProcId, outbox: &mut Outbox<Frame>) -> u64 {
        if self.reassigned[dead] {
            return 0;
        }
        self.reassigned[dead] = true;
        let mut orphans: Vec<WireId> = {
            let plan = self.full_assignment.as_ref().expect("recovery implies a full assignment");
            let from = self.ckpt_known[dead] as usize;
            plan[dead].get(from..).map(<[WireId]>::to_vec).unwrap_or_default()
        };
        // Wires this coordinator previously granted to the dead node are
        // in nobody's static assignment; re-grant them all — the ones
        // the dead node did route are durable (dynamic routes survive a
        // crash) and resolve as duplicates, first-writer-wins.
        orphans.extend(std::mem::take(&mut self.granted_log[dead]));
        if orphans.is_empty() {
            return 0;
        }
        let targets: Vec<ProcId> =
            (0..self.regions.n_procs()).filter(|&p| p != dead && !self.presumed_dead[p]).collect();
        let mut buckets: Vec<Vec<WireId>> = vec![Vec::new(); targets.len()];
        for (i, &w) in orphans.iter().enumerate() {
            buckets[i % targets.len()].push(w);
        }
        let mut busy = 0u64;
        for (t, wires) in targets.into_iter().zip(buckets) {
            if wires.is_empty() {
                continue;
            }
            self.recovery_stats.wires_reassigned += wires.len() as u64;
            for &w in &wires {
                self.driver.emit_event(
                    Stamp::At(self.now_ns),
                    EventKind::WireReassigned { wire: w as u32, from: dead as u32, to: t as u32 },
                );
            }
            if t == self.proc {
                self.recovery_stats.wires_adopted += wires.len() as u64;
                self.adopted.extend(wires);
                self.finished_sent = false;
            } else {
                self.finished_flags[t] = false;
                self.granted_log[t].extend(wires.iter().copied());
                busy += self.send(
                    outbox,
                    t,
                    Packet::Reassign { wires: wires.iter().map(|&w| w as u32).collect() },
                );
            }
        }
        busy
    }
}

impl RouterNode {
    /// Routes one dynamically granted wire (§4.2 dynamic scheme; single
    /// iteration, so there is never a previous route to rip up).
    fn route_granted_wire(&mut self, wire_id: WireId, outbox: &mut Outbox<Frame>) -> u64 {
        let mut busy = 0u64;
        let wire = self.circuit.wire(wire_id).clone();
        let eval = route_wire_scratch(
            &self.replica,
            &wire,
            self.config.params.channel_overshoot,
            &mut self.scratch,
        );
        busy += eval.cells_examined * self.config.cell_eval_ns;
        busy += eval.route.len() as u64 * self.config.cell_write_ns;
        let cost_at_decision = {
            use locus_router::CostView;
            let mut oracle = self.oracle.lock().expect("oracle lock");
            let cost = oracle.route_cost(&eval.route);
            oracle.add_route(&eval.route);
            cost
        };
        self.touch_truth(&eval.route);
        for &cell in eval.route.cells() {
            self.apply_cell_change(cell, 1);
        }
        if self.config.structure == PacketStructure::WireBased {
            self.wire_events
                .push(WireEvent { ripped: Vec::new(), routed: eval.route.segments().to_vec() });
        }
        self.driver.commit_dynamic(wire_id, eval, cost_at_decision, Stamp::At(self.now_ns));
        self.wires_routed_count += 1;
        self.maybe_audit_replica();
        busy += self.emit_sender_updates(outbox);
        busy
    }

    /// One step of the dynamic-distribution protocol; returns the step
    /// outcome directly.
    fn dynamic_step(&mut self, mut busy: u64, outbox: &mut Outbox<Frame>) -> Step {
        if self.proc == COORDINATOR {
            // The assignment processor routes wires from the pool itself
            // ("at a low priority": requests were already served during
            // message processing at the top of this step).
            if self.dyn_pool_next < self.circuit.wire_count() {
                let w = self.dyn_pool_next;
                self.dyn_pool_next += 1;
                busy += self.route_granted_wire(w, outbox);
            } else {
                self.mark_finished_routing();
                self.driver.close_iteration();
            }
            return Step::Continue { busy_ns: busy };
        }
        if let Some(w) = self.granted.take() {
            busy += self.route_granted_wire(w, outbox);
            // Pipeline the next request behind the routing work.
            busy += self.send(outbox, COORDINATOR, Packet::WireRequest);
            self.awaiting_grant = true;
            return Step::Continue { busy_ns: busy };
        }
        if self.awaiting_grant {
            return if busy > 0 { Step::Continue { busy_ns: busy } } else { Step::Block };
        }
        // First step: ask for work.
        busy += self.send(outbox, COORDINATOR, Packet::WireRequest);
        self.awaiting_grant = true;
        Step::Continue { busy_ns: busy }
    }
}

impl RouterNode {
    /// The router program proper: termination protocol, blocking waits,
    /// and routing work. Inbox traffic has already been unframed and
    /// applied; `busy` carries its processing time.
    fn step_inner(&mut self, mut busy: u64, outbox: &mut Outbox<Frame>) -> Step {
        // Recovery bookkeeping first: heartbeats, failure detection,
        // failover (no-op when recovery is off or the run is over).
        if !self.terminate {
            busy += self.recovery_tick(outbox);
        }

        // Work adopted from a dead peer comes before the termination
        // protocol: an adopting node is not finished.
        if self.finished_routing && !self.terminate {
            if let Some(w) = self.adopted.pop_front() {
                busy += self.route_granted_wire(w, outbox);
                self.routing_done_ns = self.now_ns;
                // Adopted routes are made durable as they commit (the
                // progress mark is unchanged; this persists the shard).
                busy += self.take_checkpoint(self.ckpt_progress, outbox);
                return Step::Continue { busy_ns: busy };
            }
        }

        // Termination protocol.
        let ready = self.finished_routing && self.adopted.is_empty();
        if ready && !self.finished_sent {
            self.finished_sent = true;
            if self.proc != self.coordinator {
                busy += self.send(outbox, self.coordinator, Packet::Finished);
            }
        }
        let all_reported = if self.config.recovery.is_some() {
            (0..self.regions.n_procs())
                .filter(|&p| p != self.proc)
                .all(|p| self.finished_flags[p] || self.presumed_dead[p])
        } else {
            self.finished_seen == self.regions.n_procs() - 1
        };
        if self.proc == self.coordinator && ready && !self.terminate && all_reported {
            // Broadcast to presumed-dead peers too: a stalled-but-alive
            // node falsely declared dead still needs to stop, and the
            // reliable layer bounds the cost against a truly dead one
            // by exhausting its retries.
            for p in 0..self.regions.n_procs() {
                if p != self.proc {
                    busy += self.send(outbox, p, Packet::Terminate);
                }
            }
            self.terminate = true;
        }
        if self.terminate {
            return Step::Done;
        }
        if self.finished_routing {
            // Keep serving requests until everyone is done.
            return if busy > 0 { Step::Continue { busy_ns: busy } } else { Step::Block };
        }

        // Blocking receiver-initiated strategy: hold until responses land.
        if self.config.schedule.blocking && self.outstanding > 0 {
            return if busy > 0 { Step::Continue { busy_ns: busy } } else { Step::Block };
        }

        match self.config.wire_source {
            WireSource::Static => {
                busy += self.route_next_wire(outbox);
                Step::Continue { busy_ns: busy }
            }
            WireSource::Dynamic => self.dynamic_step(busy, outbox),
        }
    }

    /// Reliability epilogue of one step: flush due acks and due
    /// retransmissions, then translate the inner outcome so the kernel
    /// keeps this node schedulable while transport work is pending.
    /// `Block` becomes `Sleep` until the next retransmission timer, and
    /// `Done` holds the node in a linger window so it can re-ack
    /// retransmitted traffic whose acks were lost.
    fn finish_step(&mut self, inner: Step, had_traffic: bool, outbox: &mut Outbox<Frame>) -> Step {
        if !self.transport.is_reliable() {
            return inner;
        }
        if self.terminate {
            // The run is over: stale updates no longer need repairing,
            // but the coordinator's own `Terminate` fan-out must keep
            // retrying or a worker that lost it never stops.
            self.transport.clear_inflight_except_terminate();
        }
        let mut extra = 0u64;
        for (to, cum_seq) in self.transport.take_due_acks() {
            extra += self.send_ack(outbox, to, cum_seq);
        }
        for (to, seq, attempt, packet) in self.transport.due_retransmits(self.now_ns) {
            extra += self.resend(outbox, to, seq, attempt, packet);
        }
        match inner {
            Step::Continue { busy_ns } => Step::Continue { busy_ns: busy_ns + extra },
            Step::Sleep { until } => Step::Sleep { until },
            Step::Block => {
                if extra > 0 {
                    Step::Continue { busy_ns: extra }
                } else if let Some(timer) = self.transport.next_timer_at() {
                    // `due_retransmits` above consumed every deadline
                    // <= now, so the timer is strictly in the future.
                    Step::Sleep { until: SimTime::from_ns(timer) }
                } else {
                    Step::Block
                }
            }
            Step::Done => {
                if had_traffic || self.linger_until.is_none() {
                    self.linger_until = Some(self.now_ns + self.transport.linger_ns());
                }
                let deadline = self.linger_until.expect("linger deadline just set");
                if extra > 0 {
                    return Step::Continue { busy_ns: extra };
                }
                if self.transport.has_inflight() {
                    let timer =
                        self.transport.next_timer_at().expect("inflight packets carry timers");
                    return Step::Sleep { until: SimTime::from_ns(timer.max(self.now_ns + 1)) };
                }
                if self.now_ns >= deadline {
                    Step::Done
                } else {
                    Step::Sleep { until: SimTime::from_ns(deadline) }
                }
            }
        }
    }
}

impl Node for RouterNode {
    type Msg = Frame;

    fn step(
        &mut self,
        now: SimTime,
        inbox: Vec<Envelope<Frame>>,
        outbox: &mut Outbox<Frame>,
    ) -> Step {
        self.now_ns = now.as_ns();
        let had_traffic = !inbox.is_empty();
        let recovery_on = self.config.recovery.is_some();
        let mut busy = 0u64;
        for env in inbox {
            if recovery_on {
                // Any traffic proves the sender alive — acks and raw
                // heartbeats included, which never reach `handle_packet`.
                self.last_heard[env.from] = self.now_ns;
            }
            for packet in self.transport.receive(env.from, env.msg) {
                busy += self.handle_packet(env.from, packet, outbox);
            }
        }
        let inner = if recovery_on && !self.terminate && self.pending_busy > 0 {
            // Mid-computation: stay responsive (heartbeat, detect, ack,
            // retransmit) but start no new routing work until the banked
            // busy time below drains.
            let tick = self.recovery_tick(outbox);
            Step::Continue { busy_ns: busy + tick }
        } else {
            self.step_inner(busy, outbox)
        };
        let out = self.finish_step(inner, had_traffic, outbox);
        if !recovery_on || self.terminate {
            // A `Terminate` mid-drain abandons the banked remainder: the
            // run is over and nobody is measuring this node any more.
            self.pending_busy = 0;
            return out;
        }
        let out = match out {
            // Drain computation in chunks short enough that the node
            // steps (and so heartbeats) well inside the suspect window
            // no matter how expensive a single wire is.
            Step::Continue { busy_ns } => {
                let chunk = (self.config.recovery.expect("recovery is on").heartbeat_ns / 2).max(1);
                let total = self.pending_busy + busy_ns;
                let charged = total.min(chunk);
                self.pending_busy = total - charged;
                Step::Continue { busy_ns: charged }
            }
            other => other,
        };
        // Never sleep or block past the next heartbeat: a silent node
        // would be declared dead, and a sleeping coordinator would never
        // notice a dead worker.
        let hb = SimTime::from_ns(self.next_heartbeat_at.max(self.now_ns + 1));
        match out {
            Step::Block => Step::Sleep { until: hb },
            Step::Sleep { until } => Step::Sleep { until: until.min(hb) },
            other => other,
        }
    }

    fn on_restart(&mut self, now: SimTime) {
        self.now_ns = now.as_ns();
        if self.config.recovery.is_none() {
            return;
        }
        // Routing state past the last checkpoint was volatile and died
        // with the crash: rip those routes back out of the shared truth
        // and the local view, and rewind the program counter. (The
        // durable prefix — replica shard and progress — reloads from the
        // checkpoint; the transport survives because peers retransmit
        // anything unacknowledged.)
        let stamp = Stamp::At(self.now_ns);
        let lo = self.ckpt_progress as usize;
        let hi = self.wire_idx;
        for idx in (lo..hi).rev() {
            let wire_id = self.my_wires[idx];
            if let Some(old) = self.driver.rip_up(idx, wire_id, stamp) {
                self.oracle.lock().expect("oracle lock").remove_route(&old);
                self.touch_truth(&old);
                for &cell in old.cells() {
                    self.apply_cell_change(cell, -1);
                }
            }
        }
        if hi > lo {
            self.recovery_stats.rollbacks += 1;
            self.recovery_stats.wires_rolled_back += (hi - lo) as u64;
        }
        self.wire_idx = lo;
        self.request_cursor = self.request_cursor.min(lo);
        // In-flight computation died with the crash.
        self.pending_busy = 0;
        // A fresh boot owes everyone a heartbeat, and grants every peer
        // a fresh silence clock — the old one stopped while this node
        // was down and would indict peers that never went quiet.
        self.next_heartbeat_at = self.now_ns;
        for h in &mut self.last_heard {
            *h = self.now_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::UpdateSchedule;
    use locus_circuit::presets;
    use locus_router::{assign, AssignmentStrategy};

    fn make_node(schedule: UpdateSchedule, proc: ProcId, n_procs: usize) -> RouterNode {
        let circuit = Arc::new(presets::small());
        let regions = Arc::new(RegionMap::new(circuit.channels, circuit.grids, n_procs));
        let assignment =
            assign(&circuit, &regions, AssignmentStrategy::Locality { threshold_cost: Some(1000) });
        let config = MsgPassConfig::new(n_procs, schedule);
        let oracle = Arc::new(Mutex::new(CostArray::new(circuit.channels, circuit.grids)));
        RouterNode::new(
            proc,
            circuit,
            regions,
            config,
            assignment.wires_per_proc[proc].clone(),
            oracle,
        )
    }

    #[test]
    fn node_routes_its_wires_standalone() {
        // Without any updates, a node simply routes its wires to
        // completion (single-processor semantics on its replica).
        let mut node = make_node(UpdateSchedule::never(), 0, 4);
        let n_wires = node.my_wires.len();
        assert!(n_wires > 0);
        let mut outbox = Outbox::new();
        let mut steps = 0;
        loop {
            let step = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
            steps += 1;
            if node.finished_routing {
                break;
            }
            assert!(matches!(step, Step::Continue { .. }));
            assert!(steps < 100_000, "node did not converge");
        }
        assert_eq!(node.routes().count(), n_wires);
        assert!(node.occupancy_factor() > 0 || n_wires < 3);
    }

    #[test]
    fn sender_initiated_node_emits_updates() {
        let mut node = make_node(UpdateSchedule::sender_initiated(1, 1), 0, 4);
        let mut outbox = Outbox::new();
        // Route a few wires (enough to touch a neighbouring region).
        for _ in 0..12 {
            let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        }
        assert!(!outbox.is_empty(), "sender-initiated schedule must emit updates while routing");
        use crate::packet::PacketKind;
        assert!(node.sent_counts().packets(PacketKind::SendRmtData) > 0);
    }

    #[test]
    fn req_rmt_data_is_answered_with_absolute_data() {
        let mut owner = make_node(UpdateSchedule::receiver_initiated(1, 5), 0, 4);
        let mut outbox = Outbox::new();
        let rect = owner.my_region;
        let busy = owner.handle_packet(1, Packet::ReqRmtData { rect }, &mut outbox);
        assert!(busy > 0);
        assert_eq!(outbox.len(), 2, "response plus ReqLocData (threshold 1)");
        assert_eq!(outbox.sends()[0].0, 1);
    }

    #[test]
    fn req_loc_data_returns_deltas_and_clears() {
        let mut node = make_node(UpdateSchedule::receiver_initiated(1, 5), 0, 4);
        // Fabricate a change to a foreign region (proc 3's region).
        let foreign = node.regions.region(3);
        let cell = locus_circuit::GridCell::new(foreign.c_lo, foreign.x_lo);
        node.apply_cell_change(cell, 1);
        let mut outbox = Outbox::new();
        let _ = node.handle_packet(3, Packet::ReqLocData { rect: foreign }, &mut outbox);
        assert_eq!(outbox.len(), 1);
        match outbox.sends()[0].2.packet().expect("data frame").clone() {
            Packet::RmtData { rect, deltas, response } => {
                assert!(response);
                assert_eq!(rect, Rect::cell(cell));
                assert_eq!(deltas, vec![1i16]);
            }
            other => panic!("expected RmtData response, got {other:?}"),
        }
        assert!(node.delta.is_zero(), "answered deltas must be cleared");
    }

    #[test]
    fn loc_data_installs_absolute_values() {
        let mut node = make_node(UpdateSchedule::never(), 0, 4);
        let foreign = node.regions.region(3);
        let rect = Rect::new(foreign.c_lo, foreign.c_lo, foreign.x_lo, foreign.x_lo + 1);
        let mut outbox = Outbox::new();
        let _ = node.handle_packet(
            3,
            Packet::LocData { rect, values: vec![7, 9], response: false },
            &mut outbox,
        );
        use locus_router::CostView;
        assert_eq!(node.replica.cost_at(locus_circuit::GridCell::new(rect.c_lo, rect.x_lo)), 7);
        assert_eq!(node.replica.cost_at(locus_circuit::GridCell::new(rect.c_lo, rect.x_lo + 1)), 9);
    }

    #[test]
    fn rmt_data_applies_deltas_to_own_region() {
        let mut node = make_node(UpdateSchedule::never(), 0, 4);
        let own = node.my_region;
        let rect = Rect::new(own.c_lo, own.c_lo, own.x_lo, own.x_lo);
        let mut outbox = Outbox::new();
        let _ = node.handle_packet(
            1,
            Packet::RmtData { rect, deltas: vec![3], response: false },
            &mut outbox,
        );
        use locus_router::CostView;
        assert_eq!(node.replica.cost_at(locus_circuit::GridCell::new(own.c_lo, own.x_lo)), 3);
        assert!(node.own_dirty.is_some(), "remote change must dirty the own region");
    }

    #[test]
    fn blocking_node_blocks_on_outstanding_requests() {
        let mut node = make_node(UpdateSchedule::receiver_initiated_blocking(1, 1), 1, 4);
        let mut outbox = Outbox::new();
        // First step issues requests for the upcoming window and routes.
        let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        if node.outstanding > 0 {
            let step = node.step(SimTime::ZERO, Vec::new(), &mut Outbox::new());
            assert_eq!(step, Step::Block, "must block while responses are outstanding");
        }
    }

    #[test]
    fn response_unblocks_blocking_node() {
        let mut node = make_node(UpdateSchedule::receiver_initiated_blocking(1, 1), 1, 4);
        let mut outbox = Outbox::new();
        let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        let outstanding = node.outstanding;
        if outstanding == 0 {
            return; // this processor's first wires are fully local
        }
        // Answer every outstanding request with an empty-ish response.
        let sends: Vec<_> = outbox.sends().to_vec();
        for (to, _, packet) in sends {
            if let Some(Packet::ReqRmtData { rect }) = packet.packet().cloned() {
                let values = vec![0u16; rect.area() as usize];
                let _ = node.handle_packet(
                    to,
                    Packet::LocData { rect, values, response: true },
                    &mut Outbox::new(),
                );
            }
        }
        assert_eq!(node.outstanding, 0);
        let step = node.step(SimTime::ZERO, Vec::new(), &mut Outbox::new());
        assert!(matches!(step, Step::Continue { .. }), "node must resume after responses");
    }

    #[test]
    fn coordinator_terminates_after_all_finished() {
        let mut node = make_node(UpdateSchedule::never(), 0, 4);
        // Drive the coordinator to finish its own routing.
        let mut outbox = Outbox::new();
        while !node.finished_routing {
            let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        }
        // It must not terminate before hearing from the other three.
        let step = node.step(SimTime::ZERO, Vec::new(), &mut Outbox::new());
        assert_ne!(step, Step::Done);
        for _ in 0..3 {
            let _ = node.handle_packet(1, Packet::Finished, &mut Outbox::new());
        }
        let mut outbox = Outbox::new();
        let step = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        assert_eq!(step, Step::Done);
        assert_eq!(outbox.len(), 3, "terminate broadcast to the other nodes");
    }

    #[test]
    fn worker_stops_on_terminate() {
        let mut node = make_node(UpdateSchedule::never(), 1, 4);
        let mut outbox = Outbox::new();
        while !node.finished_routing {
            let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        }
        let _ = node.handle_packet(0, Packet::Terminate, &mut Outbox::new());
        let step = node.step(SimTime::ZERO, Vec::new(), &mut Outbox::new());
        assert_eq!(step, Step::Done);
    }

    #[test]
    fn delta_cancellation_across_iterations() {
        // Route all wires twice with no updates: any cell whose route did
        // not move between iterations must hold delta <= 1 net change
        // (rip-up cancels re-route).
        let mut node = make_node(UpdateSchedule::never(), 0, 4);
        let mut outbox = Outbox::new();
        while !node.finished_routing {
            let _ = node.step(SimTime::ZERO, Vec::new(), &mut outbox);
        }
        // The replica's total must equal the final routes' coverage that
        // this node applied (its own wires only).
        let coverage: u64 = node.routes().map(|(_, r)| r.len() as u64).sum();
        assert_eq!(node.replica.total(), coverage);
    }
}
