//! End-to-end reliable delivery over the (possibly faulty) mesh.
//!
//! The paper's mesh network never loses packets, so the router's update
//! protocol assumes perfect delivery. When the mesh fault layer
//! ([`locus_mesh::FaultPlan`]) drops, duplicates, or reorders envelopes,
//! that assumption breaks: a lost `WireGrant` or `Terminate` deadlocks
//! the whole machine, and a duplicated delta packet corrupts every
//! replica it lands on. This module adds the classic end-to-end fix —
//! per-peer **sequence numbers**, **cumulative acknowledgements**, and
//! **timeout/retransmit with exponential backoff** — as a thin framing
//! layer between [`crate::node::RouterNode`] and the mesh:
//!
//! * every data packet to a peer carries a per-(sender, receiver)
//!   sequence number ([`Frame::Data`]);
//! * the receiver delivers in order exactly once, buffering out-of-order
//!   arrivals and suppressing duplicates by sequence number, and owes a
//!   cumulative [`Frame::Ack`] after any progress;
//! * the sender keeps unacknowledged packets in flight and retransmits
//!   on a timer, doubling the timeout per attempt up to a cap;
//!   retransmission order is **criticality-first**: control traffic
//!   (`WireGrant`, `Finished`, `Terminate`) beats data packets because a
//!   lost control packet stalls the termination protocol, while a lost
//!   delta merely ages a replica;
//! * acks are never acked and never retransmitted — a lost ack is
//!   repaired by the data retransmission it would have suppressed.
//!
//! The layer is strictly opt-in: with reliability disabled the transport
//! wraps packets as [`Frame::Raw`] with zero bookkeeping, and the framed
//! byte counts equal the unframed ones, so fault-free baselines stay
//! byte-identical to runs that predate this module.

use std::collections::BTreeMap;

use crate::packet::{Packet, PacketKind};

/// Extra wire bytes for the sequence number of a [`Frame::Data`].
pub const SEQ_BYTES: u32 = 4;

/// Wire size of a [`Frame::Ack`]: 1 type byte + 4-byte cumulative seq.
pub const ACK_BYTES: u32 = 5;

/// What actually crosses the mesh when reliability is on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// An unsequenced packet (reliability disabled — the pre-existing
    /// wire format, byte-for-byte).
    Raw(Packet),
    /// A sequenced packet: `seq` is per-(sender, receiver), starting at 0.
    Data {
        /// Sequence number within the sender→receiver stream.
        seq: u32,
        /// The application packet.
        packet: Packet,
    },
    /// Cumulative acknowledgement: "I have delivered every sequence
    /// number below `cum_seq` on your stream to me".
    Ack {
        /// One past the highest in-order-delivered sequence number.
        cum_seq: u32,
    },
}

impl Frame {
    /// Application payload size on the wire in bytes.
    pub fn payload_bytes(&self) -> u32 {
        match self {
            Frame::Raw(p) => p.payload_bytes(),
            Frame::Data { packet, .. } => packet.payload_bytes() + SEQ_BYTES,
            Frame::Ack { .. } => ACK_BYTES,
        }
    }

    /// The inner packet, if this frame carries one.
    pub fn packet(&self) -> Option<&Packet> {
        match self {
            Frame::Raw(p) | Frame::Data { packet: p, .. } => Some(p),
            Frame::Ack { .. } => None,
        }
    }
}

/// Tuning knobs of the retransmission protocol.
///
/// The default timeout looks enormous next to the mesh's ~4 µs packet
/// latency, but the bottleneck is the *receiver*: disassembly costs
/// 10 000 ns per byte (§5.1.1 calibration), so a single 500-byte update
/// occupies its receiver for 5 ms and the ack behind it waits. Timeouts
/// below that turnaround would retransmit packets that were merely
/// queued, melting the network under its own repair traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Initial retransmission timeout (ns).
    pub retransmit_timeout_ns: u64,
    /// Backoff cap: the timeout doubles per attempt up to this (ns).
    pub max_timeout_ns: u64,
    /// Retransmissions per packet before the sender gives up and counts
    /// a `retries_exhausted` (the watchdog recovers the consequences).
    pub max_retries: u32,
    /// How long a finished node lingers awake to re-ack duplicate or
    /// retransmitted traffic before declaring itself done (ns).
    pub linger_ns: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retransmit_timeout_ns: 20_000_000,
            max_timeout_ns: 160_000_000,
            max_retries: 10,
            linger_ns: 20_000_000,
        }
    }
}

impl ReliableConfig {
    /// Checks the knobs are internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.retransmit_timeout_ns == 0 {
            return Err("retransmit_timeout_ns must be positive".into());
        }
        if self.max_timeout_ns < self.retransmit_timeout_ns {
            return Err("max_timeout_ns must be >= retransmit_timeout_ns".into());
        }
        Ok(())
    }
}

/// Counters of one node's transport (merged across nodes in the run
/// outcome).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Packets retransmitted after a timeout.
    pub retransmits: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Received packets discarded as duplicates (seq already delivered
    /// or already buffered).
    pub dup_suppressed: u64,
    /// Received packets that arrived ahead of sequence and were buffered.
    pub out_of_order: u64,
    /// Packets abandoned after `max_retries` retransmissions.
    pub retries_exhausted: u64,
}

impl ReliableStats {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ReliableStats) {
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.dup_suppressed += other.dup_suppressed;
        self.out_of_order += other.out_of_order;
        self.retries_exhausted += other.retries_exhausted;
    }
}

/// One unacknowledged packet at the sender.
#[derive(Clone, Debug)]
struct Inflight {
    seq: u32,
    packet: Packet,
    /// Retransmissions performed so far (0 = only the original send).
    attempts: u32,
    /// Current timeout (doubles per attempt).
    timeout_ns: u64,
    /// Absolute time of the next retransmission.
    next_retry_at: u64,
}

/// Sender-side state for one peer.
#[derive(Clone, Debug, Default)]
struct TxPeer {
    next_seq: u32,
    inflight: Vec<Inflight>,
}

/// Receiver-side state for one peer.
#[derive(Clone, Debug, Default)]
struct RxPeer {
    /// Next sequence number to deliver; everything below is delivered.
    next_expected: u32,
    /// Out-of-order arrivals waiting for the gap to fill.
    buffered: BTreeMap<u32, Packet>,
    /// Whether a cumulative ack is owed to this peer.
    ack_due: bool,
}

/// A retransmission due now: `(to, seq, attempt, packet)`.
pub type Retransmit = (usize, u32, u32, Packet);

/// One node's end-to-end transport: per-peer sequence/ack/retransmit
/// state. With `cfg = None` the transport is a zero-cost pass-through.
#[derive(Debug)]
pub struct Transport {
    cfg: Option<ReliableConfig>,
    tx: Vec<TxPeer>,
    rx: Vec<RxPeer>,
    stats: ReliableStats,
}

impl Transport {
    /// Builds the transport for a machine of `n_procs` nodes.
    pub fn new(n_procs: usize, cfg: Option<ReliableConfig>) -> Self {
        Transport {
            cfg,
            tx: vec![TxPeer::default(); n_procs],
            rx: vec![RxPeer::default(); n_procs],
            stats: ReliableStats::default(),
        }
    }

    /// Whether the reliability protocol is active.
    pub fn is_reliable(&self) -> bool {
        self.cfg.is_some()
    }

    /// The post-completion linger window (0 when reliability is off).
    pub fn linger_ns(&self) -> u64 {
        self.cfg.map_or(0, |c| c.linger_ns)
    }

    /// Frames `packet` for `to`, assigning a sequence number and arming
    /// the retransmission timer when reliability is on.
    pub fn wrap(&mut self, to: usize, packet: Packet, now_ns: u64) -> Frame {
        let Some(cfg) = self.cfg else {
            return Frame::Raw(packet);
        };
        let peer = &mut self.tx[to];
        let seq = peer.next_seq;
        peer.next_seq += 1;
        peer.inflight.push(Inflight {
            seq,
            packet: packet.clone(),
            attempts: 0,
            timeout_ns: cfg.retransmit_timeout_ns,
            next_retry_at: now_ns + cfg.retransmit_timeout_ns,
        });
        Frame::Data { seq, packet }
    }

    /// Processes one received frame from `from`, returning the packets
    /// now deliverable to the application **in sequence order, exactly
    /// once**. Acks and duplicates return an empty vec.
    pub fn receive(&mut self, from: usize, frame: Frame) -> Vec<Packet> {
        match frame {
            Frame::Raw(p) => vec![p],
            Frame::Ack { cum_seq } => {
                self.tx[from].inflight.retain(|f| f.seq >= cum_seq);
                Vec::new()
            }
            Frame::Data { seq, packet } => {
                let rx = &mut self.rx[from];
                rx.ack_due = true;
                if seq < rx.next_expected {
                    self.stats.dup_suppressed += 1;
                    return Vec::new();
                }
                if seq > rx.next_expected {
                    if rx.buffered.insert(seq, packet).is_some() {
                        self.stats.dup_suppressed += 1;
                    } else {
                        self.stats.out_of_order += 1;
                    }
                    return Vec::new();
                }
                let mut out = vec![packet];
                rx.next_expected += 1;
                while let Some(p) = rx.buffered.remove(&rx.next_expected) {
                    out.push(p);
                    rx.next_expected += 1;
                }
                out
            }
        }
    }

    /// Drains the acks owed right now as `(to, cum_seq)` pairs.
    pub fn take_due_acks(&mut self) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for (peer, rx) in self.rx.iter_mut().enumerate() {
            if rx.ack_due {
                rx.ack_due = false;
                out.push((peer, rx.next_expected));
                self.stats.acks_sent += 1;
            }
        }
        out
    }

    /// Collects the retransmissions due at `now_ns`, arms the next
    /// timers, and drops packets that exhausted their retries.
    /// Criticality-first: control packets (wire grants, termination) are
    /// returned before data packets.
    pub fn due_retransmits(&mut self, now_ns: u64) -> Vec<Retransmit> {
        let Some(cfg) = self.cfg else {
            return Vec::new();
        };
        let mut due: Vec<Retransmit> = Vec::new();
        for (peer, tx) in self.tx.iter_mut().enumerate() {
            tx.inflight.retain_mut(|f| {
                if f.next_retry_at > now_ns {
                    return true;
                }
                if f.attempts >= cfg.max_retries {
                    self.stats.retries_exhausted += 1;
                    return false;
                }
                f.attempts += 1;
                f.timeout_ns = (f.timeout_ns * 2).min(cfg.max_timeout_ns);
                f.next_retry_at = now_ns + f.timeout_ns;
                self.stats.retransmits += 1;
                due.push((peer, f.seq, f.attempts, f.packet.clone()));
                true
            });
        }
        due.sort_by_key(|(peer, seq, _, p)| {
            // Control and recovery traffic first: a lost grant, Terminate
            // or Reassign stalls the whole machine, while a lost delta
            // merely ages a replica.
            let rank = match p.kind() {
                PacketKind::Control | PacketKind::Recovery => 0u8,
                _ => 1,
            };
            (rank, *peer, *seq)
        });
        due
    }

    /// The earliest pending retransmission deadline, if any packet is in
    /// flight.
    pub fn next_timer_at(&self) -> Option<u64> {
        self.tx.iter().flat_map(|t| t.inflight.iter().map(|f| f.next_retry_at)).min()
    }

    /// Whether any packet awaits acknowledgement.
    pub fn has_inflight(&self) -> bool {
        self.tx.iter().any(|t| !t.inflight.is_empty())
    }

    /// Whether any cumulative ack is owed.
    pub fn has_due_acks(&self) -> bool {
        self.rx.iter().any(|r| r.ack_due)
    }

    /// Abandons every unacknowledged packet except `Terminate` frames.
    /// Called when a node learns the run is over: stale data and control
    /// traffic no longer matter, but the coordinator's own `Terminate`
    /// fan-out must keep retrying or a worker that lost it never stops.
    pub fn clear_inflight_except_terminate(&mut self) {
        for tx in &mut self.tx {
            tx.inflight.retain(|f| f.packet == Packet::Terminate);
        }
    }

    /// This node's transport counters.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reliable() -> Transport {
        Transport::new(4, Some(ReliableConfig::default()))
    }

    #[test]
    fn raw_mode_is_a_pass_through() {
        let mut t = Transport::new(4, None);
        assert!(!t.is_reliable());
        let f = t.wrap(1, Packet::Finished, 0);
        assert_eq!(f, Frame::Raw(Packet::Finished));
        assert_eq!(f.payload_bytes(), Packet::Finished.payload_bytes());
        assert_eq!(t.receive(1, f), vec![Packet::Finished]);
        assert!(!t.has_inflight());
        assert!(t.due_retransmits(u64::MAX).is_empty());
        assert!(t.take_due_acks().is_empty());
    }

    #[test]
    fn frames_carry_seq_overhead_and_acks_are_small() {
        let mut t = reliable();
        let f = t.wrap(1, Packet::Finished, 0);
        assert_eq!(f, Frame::Data { seq: 0, packet: Packet::Finished });
        assert_eq!(f.payload_bytes(), Packet::Finished.payload_bytes() + SEQ_BYTES);
        assert_eq!(Frame::Ack { cum_seq: 9 }.payload_bytes(), ACK_BYTES);
    }

    #[test]
    fn in_order_delivery_and_cumulative_ack() {
        let mut a = reliable();
        let mut b = reliable();
        let f0 = a.wrap(1, Packet::WireRequest, 0);
        let f1 = a.wrap(1, Packet::Finished, 0);
        assert_eq!(b.receive(0, f0), vec![Packet::WireRequest]);
        assert_eq!(b.receive(0, f1), vec![Packet::Finished]);
        let acks = b.take_due_acks();
        assert_eq!(acks, vec![(0, 2)]);
        assert_eq!(b.stats().acks_sent, 1, "one cumulative ack covers both");
        assert!(a.has_inflight());
        assert!(a.receive(1, Frame::Ack { cum_seq: 2 }).is_empty());
        assert!(!a.has_inflight());
    }

    #[test]
    fn out_of_order_arrivals_are_buffered_and_drained() {
        let mut b = reliable();
        assert!(b.receive(0, Frame::Data { seq: 1, packet: Packet::Finished }).is_empty());
        assert_eq!(b.stats().out_of_order, 1);
        let got = b.receive(0, Frame::Data { seq: 0, packet: Packet::WireRequest });
        assert_eq!(got, vec![Packet::WireRequest, Packet::Finished]);
        assert_eq!(b.take_due_acks(), vec![(0, 2)]);
    }

    #[test]
    fn duplicates_are_suppressed_but_reacked() {
        let mut b = reliable();
        let f = Frame::Data { seq: 0, packet: Packet::Finished };
        assert_eq!(b.receive(0, f.clone()), vec![Packet::Finished]);
        b.take_due_acks();
        assert!(b.receive(0, f).is_empty(), "second copy must not deliver");
        assert_eq!(b.stats().dup_suppressed, 1);
        assert_eq!(b.take_due_acks(), vec![(0, 1)], "dup still owes an ack");
    }

    #[test]
    fn retransmits_back_off_and_prioritise_control() {
        let cfg = ReliableConfig {
            retransmit_timeout_ns: 100,
            max_timeout_ns: 400,
            max_retries: 3,
            linger_ns: 0,
        };
        let mut t = Transport::new(4, Some(cfg));
        let data = Packet::ReqRmtData { rect: locus_circuit::Rect::new(0, 1, 0, 1) };
        t.wrap(1, data.clone(), 0); // seq 0, data
        t.wrap(2, Packet::Terminate, 0); // control
        assert!(t.due_retransmits(50).is_empty(), "nothing due yet");
        let due = t.due_retransmits(100);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].3, Packet::Terminate, "control retransmits first");
        assert_eq!(due[1].3, data);
        assert_eq!(t.stats().retransmits, 2);
        // Backoff doubled: next due at 100 + 200.
        assert!(t.due_retransmits(250).is_empty());
        assert_eq!(t.due_retransmits(300).len(), 2);
        // Third attempt at 300 + 400 (capped).
        assert_eq!(t.due_retransmits(700).len(), 2);
        // Retries exhausted: entries dropped, counted.
        assert!(t.due_retransmits(u64::MAX).is_empty());
        assert!(!t.has_inflight());
        assert_eq!(t.stats().retries_exhausted, 2);
    }

    #[test]
    fn ack_clears_only_acknowledged_prefix() {
        let mut t = reliable();
        t.wrap(1, Packet::WireRequest, 0);
        t.wrap(1, Packet::Finished, 0);
        t.wrap(1, Packet::Terminate, 0);
        t.receive(1, Frame::Ack { cum_seq: 2 });
        let due = t.due_retransmits(u64::MAX / 2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].1, 2, "only seq 2 still in flight");
    }

    #[test]
    fn terminate_survives_inflight_clear() {
        let mut t = reliable();
        t.wrap(1, Packet::Finished, 0);
        t.wrap(2, Packet::Terminate, 0);
        t.clear_inflight_except_terminate();
        let due = t.due_retransmits(u64::MAX / 2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].3, Packet::Terminate);
    }

    #[test]
    fn next_timer_tracks_earliest_deadline() {
        let cfg = ReliableConfig { retransmit_timeout_ns: 100, ..ReliableConfig::default() };
        let mut t = Transport::new(4, Some(cfg));
        assert_eq!(t.next_timer_at(), None);
        t.wrap(1, Packet::Finished, 40);
        t.wrap(2, Packet::Finished, 10);
        assert_eq!(t.next_timer_at(), Some(110));
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = ReliableStats { retransmits: 1, acks_sent: 2, ..Default::default() };
        let b = ReliableStats { retransmits: 3, dup_suppressed: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.retransmits, 4);
        assert_eq!(a.acks_sent, 2);
        assert_eq!(a.dup_suppressed, 4);
    }

    #[test]
    fn config_validation() {
        assert!(ReliableConfig::default().validate().is_ok());
        let bad = ReliableConfig { retransmit_timeout_ns: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad =
            ReliableConfig { retransmit_timeout_ns: 100, max_timeout_ns: 50, ..Default::default() };
        assert!(bad.validate().is_err());
    }
}
