//! Update packet encodings and per-type traffic accounting.
//!
//! The chosen packet structure is the paper's third option (§4.3.1): each
//! update carries "the bounding box of all the changes made within that
//! region, as well as the coordinates of the bounding box being sent".
//! Absolute data cells cost two bytes (`u16` occupancy counts); delta
//! cells cost one byte (changes between updates are small signed values);
//! every packet carries 9 bytes of type + bounding-box coordinates.

use locus_circuit::Rect;
use locus_router::Segment;

/// Per-packet application header: 1 type byte + 4 × u16 bounding box.
pub const PACKET_OVERHEAD_BYTES: u32 = 9;

/// Wire-format bytes per route segment in a wire-based update packet:
/// orientation/flag byte + start coordinate (2×u16) + extent (u16)
/// (§4.3.1's first packet structure: "coordinates of the start and end
/// points of each horizontal or vertical segment of the wire").
pub const SEGMENT_BYTES: u32 = 6;

/// One routing event in a wire-based update: the segments that were
/// ripped up (decrement) and the segments that were routed (increment),
/// with the wire-level flag byte of §4.3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireEvent {
    /// Segments of the previous route, now removed (empty on the first
    /// iteration).
    pub ripped: Vec<Segment>,
    /// Segments of the newly chosen route.
    pub routed: Vec<Segment>,
}

impl WireEvent {
    /// Wire-format size of this event.
    pub fn bytes(&self) -> u32 {
        1 + SEGMENT_BYTES * (self.ripped.len() + self.routed.len()) as u32
    }
}

/// The messages exchanged between router nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// Absolute cost-array values for `rect` (owned by the sender).
    /// Emitted by periodic `SendLocData` (to mesh neighbours) and as the
    /// response to `ReqRmtData` (with `response = true`).
    LocData {
        /// Bounding box carried.
        rect: Rect,
        /// Row-major absolute values.
        values: Vec<u16>,
        /// True when answering a `ReqRmtData` request.
        response: bool,
    },
    /// Deltas the sender accumulated against `rect` (owned by the
    /// receiver). Emitted by periodic `SendRmtData` and as the response
    /// to `ReqLocData` (with `response = true`).
    RmtData {
        /// Bounding box carried.
        rect: Rect,
        /// Row-major signed deltas.
        deltas: Vec<i16>,
        /// True when answering a `ReqLocData` request.
        response: bool,
    },
    /// Receiver-initiated request: "owner, send me absolute data for
    /// `rect` of your region".
    ReqRmtData {
        /// Region requested.
        rect: Rect,
    },
    /// Receiver-initiated request from an owner: "send me the deltas you
    /// hold against `rect` of my region".
    ReqLocData {
        /// Region requested.
        rect: Rect,
    },
    /// Wire-based update (§4.3.1 structure 1): the raw routing events
    /// since the last update, as segment lists with routed/ripped flags.
    /// Carries no cost-array values; receivers replay the events.
    WireData {
        /// The routing events, oldest first.
        events: Vec<WireEvent>,
    },
    /// Dynamic distribution (§4.2): a worker asks the assignment
    /// processor for its next wire.
    WireRequest,
    /// Dynamic distribution: the assignment processor hands out a wire,
    /// or `None` when the pool is exhausted.
    WireGrant {
        /// The granted wire id, if any remain.
        wire: Option<u32>,
    },
    /// Control: this node finished routing all its iterations (sent to
    /// the coordinator, node 0).
    Finished,
    /// Control: the coordinator saw every `Finished`; everyone may stop.
    Terminate,
    /// Recovery: liveness beacon. Workers beat to the coordinator, the
    /// coordinator beats back. Sent unsequenced (a lost heartbeat is
    /// repaired by the next one, and a retransmitted heartbeat would be
    /// stale evidence).
    Heartbeat,
    /// Recovery: "my first `progress` assigned wires are durable". The
    /// checkpoint body (the sender's cost-array shard plus per-wire
    /// progress, `bytes` serialized bytes) goes to modelled local stable
    /// store; only this progress report crosses the network.
    Checkpoint {
        /// Wires of the sender's static assignment now checkpointed.
        progress: u32,
        /// Serialized checkpoint size (for accounting).
        bytes: u32,
    },
    /// Recovery: the coordinator hands a dead node's unfinished wires to
    /// a live adopter.
    Reassign {
        /// Wire ids the receiver must route.
        wires: Vec<u32>,
    },
    /// Recovery: the sender has taken over as coordinator after the old
    /// one was presumed dead. Receivers re-aim their termination and
    /// checkpoint traffic and answer with a [`Packet::StatusReport`].
    NewCoordinator,
    /// Recovery: a worker's state summary for a freshly failed-over
    /// coordinator rebuilding its tables.
    StatusReport {
        /// Wires of the sender's static assignment checkpointed so far.
        progress: u32,
        /// Whether the sender has finished all its routing work.
        finished: bool,
    },
}

impl Packet {
    /// Application payload size on the wire in bytes.
    pub fn payload_bytes(&self) -> u32 {
        match self {
            Packet::LocData { values, .. } => PACKET_OVERHEAD_BYTES + 2 * values.len() as u32,
            Packet::RmtData { deltas, .. } => PACKET_OVERHEAD_BYTES + deltas.len() as u32,
            Packet::ReqRmtData { .. } | Packet::ReqLocData { .. } => PACKET_OVERHEAD_BYTES,
            Packet::WireData { events } => {
                PACKET_OVERHEAD_BYTES + events.iter().map(WireEvent::bytes).sum::<u32>()
            }
            Packet::WireRequest => 1,
            Packet::WireGrant { .. } => 5,
            Packet::Finished | Packet::Terminate => 1,
            Packet::Heartbeat => 2,
            Packet::Checkpoint { .. } => 9,
            Packet::Reassign { wires } => 1 + 4 * wires.len() as u32,
            Packet::NewCoordinator => 1,
            Packet::StatusReport { .. } => 6,
        }
    }

    /// The classification bucket of this packet.
    pub fn kind(&self) -> PacketKind {
        match self {
            Packet::LocData { response: false, .. } => PacketKind::SendLocData,
            Packet::LocData { response: true, .. } => PacketKind::ReqRmtDataResponse,
            Packet::RmtData { response: false, .. } => PacketKind::SendRmtData,
            Packet::RmtData { response: true, .. } => PacketKind::ReqLocDataResponse,
            Packet::ReqRmtData { .. } => PacketKind::ReqRmtData,
            Packet::ReqLocData { .. } => PacketKind::ReqLocData,
            Packet::WireData { .. } => PacketKind::WireData,
            Packet::WireRequest | Packet::WireGrant { .. } => PacketKind::Control,
            Packet::Finished | Packet::Terminate => PacketKind::Control,
            Packet::Heartbeat
            | Packet::Checkpoint { .. }
            | Packet::Reassign { .. }
            | Packet::NewCoordinator
            | Packet::StatusReport { .. } => PacketKind::Recovery,
        }
    }
}

/// Classification of packets for reporting (Figure 3 taxonomy plus the
/// request/response split and termination control traffic).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PacketKind {
    /// Periodic absolute own-region update (sender-initiated).
    SendLocData,
    /// Periodic delta update to an owner (sender-initiated).
    SendRmtData,
    /// Request for a remote owner's data (receiver-initiated).
    ReqRmtData,
    /// Absolute-data response to `ReqRmtData`.
    ReqRmtDataResponse,
    /// Owner's request for a remote processor's deltas.
    ReqLocData,
    /// Delta response to `ReqLocData`.
    ReqLocDataResponse,
    /// Wire-based routing-event update (§4.3.1 structure 1).
    WireData,
    /// Termination protocol traffic.
    Control,
    /// Reliability-layer cumulative acknowledgements (only present when
    /// the end-to-end reliable-delivery protocol is enabled).
    Ack,
    /// Recovery-layer traffic: heartbeats, checkpoint reports, wire
    /// reassignments, coordinator failover (only present when the
    /// checkpoint/restore recovery layer is enabled).
    Recovery,
}

impl PacketKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [PacketKind; 10] = [
        PacketKind::SendLocData,
        PacketKind::SendRmtData,
        PacketKind::ReqRmtData,
        PacketKind::ReqRmtDataResponse,
        PacketKind::ReqLocData,
        PacketKind::ReqLocDataResponse,
        PacketKind::WireData,
        PacketKind::Control,
        PacketKind::Ack,
        PacketKind::Recovery,
    ];

    fn index(self) -> usize {
        match self {
            PacketKind::SendLocData => 0,
            PacketKind::SendRmtData => 1,
            PacketKind::ReqRmtData => 2,
            PacketKind::ReqRmtDataResponse => 3,
            PacketKind::ReqLocData => 4,
            PacketKind::ReqLocDataResponse => 5,
            PacketKind::WireData => 6,
            PacketKind::Control => 7,
            PacketKind::Ack => 8,
            PacketKind::Recovery => 9,
        }
    }
}

/// Number of [`PacketKind`] buckets.
const N_KINDS: usize = PacketKind::ALL.len();

/// Packet and byte counts broken down by [`PacketKind`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketCounts {
    packets: [u64; N_KINDS],
    bytes: [u64; N_KINDS],
}

impl PacketCounts {
    /// Records one sent packet.
    pub fn record(&mut self, packet: &Packet) {
        let i = packet.kind().index();
        self.packets[i] += 1;
        self.bytes[i] += packet.payload_bytes() as u64;
    }

    /// Records one reliability-layer acknowledgement frame of `bytes`
    /// payload bytes (acks are frames, not [`Packet`]s).
    pub fn record_ack(&mut self, bytes: u32) {
        let i = PacketKind::Ack.index();
        self.packets[i] += 1;
        self.bytes[i] += bytes as u64;
    }

    /// Packets of `kind` recorded.
    pub fn packets(&self, kind: PacketKind) -> u64 {
        self.packets[kind.index()]
    }

    /// Bytes of `kind` recorded.
    pub fn bytes(&self, kind: PacketKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Total packets.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &PacketCounts) {
        for i in 0..N_KINDS {
            self.packets[i] += other.packets[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rect {
        Rect::new(0, 1, 0, 2)
    }

    #[test]
    fn payload_sizes() {
        let loc = Packet::LocData { rect: rect(), values: vec![0; 6], response: false };
        assert_eq!(loc.payload_bytes(), 9 + 12);
        let rmt = Packet::RmtData { rect: rect(), deltas: vec![0; 6], response: false };
        assert_eq!(rmt.payload_bytes(), 9 + 6);
        assert_eq!(Packet::ReqRmtData { rect: rect() }.payload_bytes(), 9);
        assert_eq!(Packet::Finished.payload_bytes(), 1);
    }

    #[test]
    fn kind_classification_distinguishes_responses() {
        let p = Packet::LocData { rect: rect(), values: vec![], response: true };
        assert_eq!(p.kind(), PacketKind::ReqRmtDataResponse);
        let p = Packet::RmtData { rect: rect(), deltas: vec![], response: true };
        assert_eq!(p.kind(), PacketKind::ReqLocDataResponse);
        assert_eq!(Packet::Terminate.kind(), PacketKind::Control);
    }

    #[test]
    fn wire_data_payload_counts_segments() {
        use locus_router::Segment;
        let ev = WireEvent {
            ripped: vec![Segment::horizontal(0, 0, 5)],
            routed: vec![Segment::horizontal(1, 0, 5), Segment::vertical(5, 0, 1)],
        };
        assert_eq!(ev.bytes(), 1 + 6 * 3);
        let p = Packet::WireData { events: vec![ev] };
        assert_eq!(p.payload_bytes(), 9 + 19);
        assert_eq!(p.kind(), PacketKind::WireData);
    }

    #[test]
    fn recovery_packets_size_and_classify() {
        assert_eq!(Packet::Heartbeat.payload_bytes(), 2);
        assert_eq!(Packet::Checkpoint { progress: 3, bytes: 500 }.payload_bytes(), 9);
        assert_eq!(Packet::Reassign { wires: vec![1, 2, 3] }.payload_bytes(), 1 + 12);
        assert_eq!(Packet::NewCoordinator.payload_bytes(), 1);
        assert_eq!(Packet::StatusReport { progress: 7, finished: true }.payload_bytes(), 6);
        for p in [
            Packet::Heartbeat,
            Packet::Checkpoint { progress: 0, bytes: 0 },
            Packet::Reassign { wires: vec![] },
            Packet::NewCoordinator,
            Packet::StatusReport { progress: 0, finished: false },
        ] {
            assert_eq!(p.kind(), PacketKind::Recovery, "{p:?}");
        }
    }

    #[test]
    fn counts_accumulate_and_merge() {
        let mut a = PacketCounts::default();
        a.record(&Packet::ReqRmtData { rect: rect() });
        a.record(&Packet::ReqRmtData { rect: rect() });
        let mut b = PacketCounts::default();
        b.record(&Packet::Finished);
        a.merge(&b);
        assert_eq!(a.packets(PacketKind::ReqRmtData), 2);
        assert_eq!(a.bytes(PacketKind::ReqRmtData), 18);
        assert_eq!(a.packets(PacketKind::Control), 1);
        assert_eq!(a.total_packets(), 3);
        assert_eq!(a.total_bytes(), 19);
    }
}
