//! # locus-msgpass
//!
//! The message-passing implementation of LocusRoute — the primary
//! contribution of Martonosi & Gupta (ICPP 1989) §4 — executed on the
//! CBS-style mesh simulator of `locus-mesh`.
//!
//! Every processor holds a **full replica** of the cost array but *owns*
//! one region of it ([`locus_router::RegionMap`], §4.1). Wires are
//! statically assigned (round robin or locality/`ThresholdCost`, §4.2) and
//! each processor routes its wires against its — possibly stale — replica.
//! Replicas are reconciled by explicit **update packets** (§4.3):
//!
//! | transaction  | initiated by | carries |
//! |--------------|--------------|---------|
//! | `SendLocData`| sender (owner)  | absolute values of the owner's region (sent to N/S/E/W neighbours) |
//! | `SendRmtData`| sender (non-owner) | deltas the sender made to someone else's region |
//! | `ReqRmtData` | receiver (non-owner) | request: "send me your region" → answered with absolute data |
//! | `ReqLocData` | receiver (owner)  | request: "send me your deltas to my region" → answered with deltas |
//!
//! Updates carry the **bounding box of changes** scanned from a per-node
//! **delta array** ([`DeltaArray`]); rip-up (−1) and re-route (+1) cancel
//! in the delta array before sending, which is why explicit updates move
//! orders of magnitude fewer bytes than cache-coherence traffic (§5.2).
//!
//! Receiver-initiated strategies come in **blocking** and **non-blocking**
//! variants (§4.3.3). Frequencies of all four transaction types are set
//! by [`UpdateSchedule`]; [`run_msgpass`] executes a full configuration
//! and returns the paper's metrics (circuit height, occupancy factor,
//! MBytes transferred, execution time).

pub mod config;
pub mod delta;
pub mod engine;
pub mod node;
pub mod packet;
pub mod reliable;
pub mod schedule;
pub mod sim;

pub use config::{MsgPassConfig, PacketStructure, RecoveryConfig, WireSource};
pub use delta::DeltaArray;
pub use engine::MsgPassEngine;
pub use node::{RecoveryStats, ReplicaSnapshot, RouterNode};
pub use packet::{Packet, PacketCounts, PacketKind, WireEvent};
pub use reliable::{Frame, ReliableConfig, ReliableStats, Transport};
pub use schedule::UpdateSchedule;
pub use sim::{
    run_msgpass, run_msgpass_observed, run_msgpass_with_mesh, run_msgpass_with_mesh_observed,
    DegradedKind, DegradedReason, MsgPassOutcome,
};
