//! Update schedules: the frequency knobs of §4.3 and Figure 3.
//!
//! Each of the four transaction types has an independent frequency
//! parameter; the paper's tables sweep them. A type set to `None` is
//! disabled, giving pure sender-initiated, pure receiver-initiated, or
//! mixed schedules.

/// Frequencies of the four update transaction types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateSchedule {
    /// Send absolute own-region data to mesh neighbours every `N` wires
    /// routed (sender-initiated; "SendLocData" column of Table 1).
    pub send_loc_data: Option<u32>,
    /// Send accumulated deltas to foreign owners every `N` wires routed
    /// (sender-initiated; "SendRmtData" column of Table 1).
    pub send_rmt_data: Option<u32>,
    /// After receiving `N` `ReqRmtData` requests from one processor, ask
    /// it for its deltas to our region (receiver-initiated, owner side;
    /// "ReqLocData" column of Table 2).
    pub req_loc_data: Option<u32>,
    /// After `N` upcoming-wire touches of a foreign region, request that
    /// region from its owner (receiver-initiated, non-owner side;
    /// "ReqRmtData" column of Table 2).
    pub req_rmt_data: Option<u32>,
    /// Whether a processor that has requested an update blocks until the
    /// response arrives (§4.3.3). Only meaningful with `req_rmt_data`.
    pub blocking: bool,
}

impl UpdateSchedule {
    /// Pure sender-initiated schedule (Table 1 rows): `SendRmtData` every
    /// `rmt` wires, `SendLocData` every `loc` wires.
    pub fn sender_initiated(rmt: u32, loc: u32) -> Self {
        UpdateSchedule {
            send_loc_data: Some(loc),
            send_rmt_data: Some(rmt),
            req_loc_data: None,
            req_rmt_data: None,
            blocking: false,
        }
    }

    /// Pure non-blocking receiver-initiated schedule (Table 2 rows):
    /// `ReqLocData` after `loc` requests, `ReqRmtData` after `rmt`
    /// region touches.
    pub fn receiver_initiated(loc: u32, rmt: u32) -> Self {
        UpdateSchedule {
            send_loc_data: None,
            send_rmt_data: None,
            req_loc_data: Some(loc),
            req_rmt_data: Some(rmt),
            blocking: false,
        }
    }

    /// Blocking variant of [`Self::receiver_initiated`] (§5.1.3).
    pub fn receiver_initiated_blocking(loc: u32, rmt: u32) -> Self {
        UpdateSchedule { blocking: true, ..Self::receiver_initiated(loc, rmt) }
    }

    /// The mixed schedule quoted in §5.1.3: `SendLocData = 5`,
    /// `SendRmtData = 2`, `ReqLocData = 1`, `ReqRmtData = 5`.
    pub fn mixed_paper() -> Self {
        UpdateSchedule {
            send_loc_data: Some(5),
            send_rmt_data: Some(2),
            req_loc_data: Some(1),
            req_rmt_data: Some(5),
            blocking: false,
        }
    }

    /// No updates at all — processors route on frozen foreign views.
    /// Used as a degenerate baseline in tests and ablations.
    pub fn never() -> Self {
        UpdateSchedule {
            send_loc_data: None,
            send_rmt_data: None,
            req_loc_data: None,
            req_rmt_data: None,
            blocking: false,
        }
    }

    /// Whether any sender-initiated transaction is enabled.
    pub fn is_sender_initiated(&self) -> bool {
        self.send_loc_data.is_some() || self.send_rmt_data.is_some()
    }

    /// Whether any receiver-initiated transaction is enabled.
    pub fn is_receiver_initiated(&self) -> bool {
        self.req_loc_data.is_some() || self.req_rmt_data.is_some()
    }

    /// Validates frequency values (zero would mean "update before any
    /// work", which the paper's parameterization excludes).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("send_loc_data", self.send_loc_data),
            ("send_rmt_data", self.send_rmt_data),
            ("req_loc_data", self.req_loc_data),
            ("req_rmt_data", self.req_rmt_data),
        ] {
            if v == Some(0) {
                return Err(format!("{name} frequency must be >= 1"));
            }
        }
        if self.blocking && self.req_rmt_data.is_none() {
            return Err("blocking requires req_rmt_data".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let s = UpdateSchedule::sender_initiated(2, 10);
        assert_eq!(s.send_rmt_data, Some(2));
        assert_eq!(s.send_loc_data, Some(10));
        assert!(s.is_sender_initiated() && !s.is_receiver_initiated());

        let r = UpdateSchedule::receiver_initiated(1, 5);
        assert_eq!(r.req_loc_data, Some(1));
        assert_eq!(r.req_rmt_data, Some(5));
        assert!(!r.blocking);
        assert!(r.is_receiver_initiated() && !r.is_sender_initiated());

        let b = UpdateSchedule::receiver_initiated_blocking(1, 5);
        assert!(b.blocking);

        let m = UpdateSchedule::mixed_paper();
        assert!(m.is_sender_initiated() && m.is_receiver_initiated());
    }

    #[test]
    fn validation_rejects_zero_frequencies() {
        let mut s = UpdateSchedule::sender_initiated(2, 10);
        assert!(s.validate().is_ok());
        s.send_loc_data = Some(0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_rejects_blocking_without_requests() {
        let s = UpdateSchedule { blocking: true, ..UpdateSchedule::never() };
        assert!(s.validate().is_err());
    }
}
