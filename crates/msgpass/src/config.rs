//! Configuration of a message-passing routing run.

use locus_mesh::{FaultPlan, MeshConfig};
use locus_router::{mesh_dims, AssignmentStrategy, RouterParams};

use crate::reliable::ReliableConfig;
use crate::schedule::UpdateSchedule;

/// The update-packet structure (§4.3.1). The paper describes three and
/// chooses the third; the other two are provided for the ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PacketStructure {
    /// The paper's choice: scan the delta array and send the rectangular
    /// bounding box of all changes in the target region (absolute data
    /// for own-region pushes, deltas otherwise). Costs a scan at the
    /// sender; minimizes bytes.
    #[default]
    BoundingBox,
    /// Structure 2: updates carry an *entire region* — "simple for the
    /// sender and receiver to process [...] on the other hand, it uses a
    /// large number of bytes".
    FullRegion,
    /// Structure 1: updates carry the raw routing events — start/end
    /// coordinates of each segment plus a routed/ripped-up flag. No
    /// delta cancellation is possible, so rip-up + re-route of an
    /// unchanged cell still crosses the network twice.
    WireBased,
}

/// How processors obtain wires to route (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WireSource {
    /// Static assignment computed before routing (the paper's choice).
    #[default]
    Static,
    /// Dynamic distribution over the network: processors request wires
    /// from an assignment processor (node 0), which also routes wires
    /// itself and serves requests only between wires — the paper's first
    /// §4.2 scheme, rejected because "a processor may have to wait for an
    /// entire wire to be routed before the wire assignment processor even
    /// retrieves the task request". Implemented for single-iteration runs
    /// (re-routing a wire that a *different* processor routed last
    /// iteration would require migrating its rip-up state, which the
    /// static scheme exists to avoid).
    Dynamic,
}

/// Checkpoint/restart and failure-detection knobs of the recovery layer.
///
/// With recovery on, every node periodically serializes its durable
/// state (its owned cost-array shard plus per-wire progress) to modelled
/// stable storage, heartbeats the coordinator, and participates in
/// coordinator-driven failure handling: a node silent for
/// `suspect_after` heartbeat periods is declared dead, its unfinished
/// wires (past its last reported checkpoint) are reassigned to live
/// nodes, and a dead coordinator is replaced by the lowest live rank.
/// All of it is deterministic — the schedule depends only on simulated
/// time — so recovered runs replay bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Wires routed between checkpoints. A final checkpoint is always
    /// taken when a node finishes its assignment, and every adopted
    /// (reassigned) wire is checkpointed as soon as it is routed.
    pub checkpoint_every: u32,
    /// Heartbeat period (ns): workers beat to the coordinator and the
    /// coordinator beats back to every worker.
    pub heartbeat_ns: u64,
    /// Silence threshold, in heartbeat periods, before a peer is
    /// declared dead.
    pub suspect_after: u32,
    /// Modelled cost of serializing one checkpoint byte to stable
    /// store (ns/byte).
    pub checkpoint_per_byte_ns: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 8,
            heartbeat_ns: 10_000_000,
            suspect_after: 5,
            checkpoint_per_byte_ns: 50,
        }
    }
}

impl RecoveryConfig {
    /// Checks the knobs are internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be >= 1".into());
        }
        if self.heartbeat_ns == 0 {
            return Err("heartbeat_ns must be positive".into());
        }
        if self.suspect_after == 0 {
            return Err("suspect_after must be >= 1".into());
        }
        Ok(())
    }

    /// The silence window after which a peer is presumed dead (ns).
    pub fn suspect_window_ns(&self) -> u64 {
        self.heartbeat_ns.saturating_mul(self.suspect_after as u64)
    }
}

/// Everything that defines one message-passing experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MsgPassConfig {
    /// Number of processors (arranged via [`mesh_dims`]).
    pub n_procs: usize,
    /// Update strategy and frequencies.
    pub schedule: UpdateSchedule,
    /// Static wire assignment strategy (§4.2).
    pub assignment: AssignmentStrategy,
    /// Core routing parameters (iterations, candidate overshoot).
    pub params: RouterParams,
    /// Modelled time to examine one cost-array cell during candidate
    /// evaluation (ns). Calibrated so 16-processor bnrE runs land in the
    /// paper's 1.1–2.5 s band (the MC68020-class node of §2.1).
    pub cell_eval_ns: u64,
    /// Modelled time to scan one delta-array cell when assembling an
    /// update (ns) — the packet-assembly overhead of §5.1.1.
    pub scan_per_cell_ns: u64,
    /// Modelled time to write one cost-array cell (rip-up/route commit).
    pub cell_write_ns: u64,
    /// Modelled per-byte packet-assembly cost at the sender (ns/byte).
    /// Together with the mesh's receive-side disassembly cost this
    /// reproduces the paper's observation that packet handling reaches a
    /// quarter of processing time under frequent updates (§5.1.1).
    pub send_per_byte_ns: u64,
    /// Per-byte disassembly cost at the receiver (ns/byte), installed
    /// into the mesh config by the simulation driver.
    pub recv_per_byte_ns: u64,
    /// How many wires ahead receiver-initiated requests are issued; the
    /// paper settles on five (§4.3.3).
    pub request_ahead: u32,
    /// Update-packet structure (§4.3.1); the paper's bounding-box scheme
    /// by default.
    pub structure: PacketStructure,
    /// How wires reach processors (§4.2); static by default.
    pub wire_source: WireSource,
    /// When `Some(n)`, every node diffs its replica against the
    /// ground-truth cost array after each `n` wires it routes, recording
    /// a staleness snapshot (diverged cells, divergence magnitudes, cell
    /// ages) and emitting a `ReplicaAudit` obs event. `None` (default)
    /// keeps the hot path audit-free.
    pub audit_every: Option<u32>,
    /// Fault schedule injected into the mesh ([`FaultPlan::none`] by
    /// default — the fault-free machine is byte-identical to one that
    /// predates the fault layer).
    pub faults: FaultPlan,
    /// End-to-end reliable delivery (sequence numbers, acks,
    /// timeout/retransmit). `None` (default) runs the original protocol,
    /// which assumes the network never loses packets; enable it whenever
    /// `faults` can drop or duplicate traffic.
    pub reliability: Option<ReliableConfig>,
    /// Checkpoint/restore recovery with heartbeat failure detection.
    /// `None` (default) runs the protocol exactly as it existed before
    /// the recovery layer; enable it whenever `faults` can crash nodes.
    /// Requires reliability, static wire assignment, a single routing
    /// iteration, and a non-blocking schedule.
    pub recovery: Option<RecoveryConfig>,
}

impl MsgPassConfig {
    /// Default experiment configuration for `n_procs` processors with the
    /// given schedule: bnrE-scale calibration, locality assignment with
    /// the paper's usual `ThresholdCost = 1000`.
    pub fn new(n_procs: usize, schedule: UpdateSchedule) -> Self {
        MsgPassConfig {
            n_procs,
            schedule,
            assignment: AssignmentStrategy::Locality { threshold_cost: Some(1000) },
            params: RouterParams::default(),
            cell_eval_ns: 2_000,
            scan_per_cell_ns: 60,
            cell_write_ns: 500,
            send_per_byte_ns: 10_000,
            recv_per_byte_ns: 10_000,
            request_ahead: 5,
            structure: PacketStructure::BoundingBox,
            wire_source: WireSource::Static,
            audit_every: None,
            faults: FaultPlan::none(),
            reliability: None,
            recovery: None,
        }
    }

    /// The mesh machine for this configuration.
    pub fn mesh_config(&self) -> MeshConfig {
        let (rows, cols) = mesh_dims(self.n_procs);
        let mut mesh = MeshConfig::ametek(rows, cols);
        mesh.recv_per_byte_ns = self.recv_per_byte_ns;
        mesh.faults = self.faults;
        mesh
    }

    /// Returns `self` with a different assignment strategy.
    pub fn with_assignment(mut self, assignment: AssignmentStrategy) -> Self {
        self.assignment = assignment;
        self
    }

    /// Returns `self` with different router parameters.
    pub fn with_params(mut self, params: RouterParams) -> Self {
        self.params = params;
        self
    }

    /// Returns `self` with a different update-packet structure.
    pub fn with_structure(mut self, structure: PacketStructure) -> Self {
        self.structure = structure;
        self
    }

    /// Returns `self` with dynamic over-the-network wire distribution
    /// (single-iteration runs only; see [`WireSource::Dynamic`]).
    pub fn with_dynamic_wires(mut self) -> Self {
        self.wire_source = WireSource::Dynamic;
        self.params = self.params.with_iterations(1);
        self
    }

    /// Returns `self` auditing replica staleness every `n` routed wires.
    pub fn with_audit_every(mut self, n: u32) -> Self {
        self.audit_every = Some(n);
        self
    }

    /// Returns `self` with the given mesh fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns `self` with the reliable-delivery protocol at its default
    /// tuning.
    pub fn with_reliability(self) -> Self {
        self.with_reliability_config(ReliableConfig::default())
    }

    /// Returns `self` with the reliable-delivery protocol tuned by `cfg`.
    pub fn with_reliability_config(mut self, cfg: ReliableConfig) -> Self {
        self.reliability = Some(cfg);
        self
    }

    /// Returns `self` with checkpoint/restore recovery at its default
    /// tuning (a single iteration is forced; recovery requires it).
    pub fn with_recovery(self) -> Self {
        self.with_recovery_config(RecoveryConfig::default())
    }

    /// Returns `self` with checkpoint/restore recovery tuned by `cfg`.
    pub fn with_recovery_config(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self.params = self.params.with_iterations(1);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_procs == 0 {
            return Err("need at least one processor".into());
        }
        if self.audit_every == Some(0) {
            return Err("audit_every must be >= 1 when set".into());
        }
        if self.request_ahead == 0 {
            return Err("request_ahead must be >= 1".into());
        }
        if self.wire_source == WireSource::Dynamic {
            if self.params.iterations != 1 {
                return Err("dynamic wire distribution supports exactly one iteration".into());
            }
            if self.schedule.is_receiver_initiated() {
                return Err("dynamic wire distribution is incompatible with receiver-initiated \
                     updates (request-ahead needs a static wire list)"
                    .into());
            }
            if self.n_procs < 2 {
                return Err("dynamic wire distribution needs a worker besides the master".into());
            }
        }
        if self.structure == PacketStructure::WireBased
            && (self.schedule.send_rmt_data.is_none() || self.schedule.is_receiver_initiated())
        {
            return Err(
                "the wire-based packet structure requires a pure sender-initiated schedule                  with send_rmt_data set (events are emitted on that cadence)"
                    .into(),
            );
        }
        self.faults.validate()?;
        if let Some(r) = &self.reliability {
            r.validate()?;
        }
        if let Some(rc) = &self.recovery {
            rc.validate()?;
            if self.reliability.is_none() {
                return Err("recovery requires the reliability layer (checkpoint, reassignment \
                     and failover traffic must survive loss)"
                    .into());
            }
            if self.wire_source != WireSource::Static {
                return Err("recovery requires static wire assignment (reassignment recomputes \
                     the dead node's static wire list)"
                    .into());
            }
            if self.params.iterations != 1 {
                return Err("recovery supports exactly one routing iteration (rollback across \
                     rip-up iterations is not modelled)"
                    .into());
            }
            if self.schedule.blocking {
                return Err("recovery is incompatible with the blocking receiver-initiated \
                     schedule (a request to a dead owner would block forever)"
                    .into());
            }
        }
        self.schedule.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = MsgPassConfig::new(16, UpdateSchedule::sender_initiated(10, 10));
        c.validate().unwrap();
        let m = c.mesh_config();
        assert_eq!((m.rows, m.cols), (4, 4));
        assert_eq!(c.request_ahead, 5);
    }

    #[test]
    fn wire_based_requires_pure_sender_schedule() {
        let ok = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
            .with_structure(PacketStructure::WireBased);
        assert!(ok.validate().is_ok());
        let bad = MsgPassConfig::new(4, UpdateSchedule::receiver_initiated(1, 5))
            .with_structure(PacketStructure::WireBased);
        assert!(bad.validate().is_err());
        let mixed = MsgPassConfig::new(4, UpdateSchedule::mixed_paper())
            .with_structure(PacketStructure::WireBased);
        assert!(mixed.validate().is_err());
    }

    #[test]
    fn dynamic_wire_source_constraints() {
        let ok =
            MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10)).with_dynamic_wires();
        assert!(ok.validate().is_ok());
        assert_eq!(ok.params.iterations, 1);
        let mut bad = ok;
        bad.params = RouterParams::default().with_iterations(2);
        assert!(bad.validate().is_err());
        let bad =
            MsgPassConfig::new(4, UpdateSchedule::receiver_initiated(1, 5)).with_dynamic_wires();
        assert!(bad.validate().is_err());
        let bad = MsgPassConfig::new(1, UpdateSchedule::never()).with_dynamic_wires();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = MsgPassConfig::new(16, UpdateSchedule::sender_initiated(10, 10));
        c.n_procs = 0;
        assert!(c.validate().is_err());
        let mut c = MsgPassConfig::new(4, UpdateSchedule::receiver_initiated(1, 5));
        c.request_ahead = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn recovery_constraints_are_enforced() {
        let ok = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
            .with_reliability()
            .with_recovery();
        ok.validate().unwrap();
        assert_eq!(ok.params.iterations, 1, "recovery forces a single iteration");

        let no_rel = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10)).with_recovery();
        assert!(no_rel.validate().is_err(), "recovery without reliability must be rejected");

        let mut multi_iter = ok;
        multi_iter.params = RouterParams::default().with_iterations(2);
        assert!(multi_iter.validate().is_err());

        let blocking = MsgPassConfig::new(4, UpdateSchedule::receiver_initiated_blocking(1, 1))
            .with_reliability()
            .with_recovery();
        assert!(blocking.validate().is_err());

        let mut dynamic = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
            .with_dynamic_wires()
            .with_reliability();
        dynamic.recovery = Some(RecoveryConfig::default());
        assert!(dynamic.validate().is_err());

        let bad = RecoveryConfig { checkpoint_every: 0, ..RecoveryConfig::default() };
        assert!(bad.validate().is_err());
        let bad = RecoveryConfig { heartbeat_ns: 0, ..RecoveryConfig::default() };
        assert!(bad.validate().is_err());
        let bad = RecoveryConfig { suspect_after: 0, ..RecoveryConfig::default() };
        assert!(bad.validate().is_err());
        assert_eq!(RecoveryConfig::default().suspect_window_ns(), 50_000_000);
    }

    #[test]
    fn audit_every_bounds() {
        let c = MsgPassConfig::new(4, UpdateSchedule::never()).with_audit_every(10);
        assert_eq!(c.audit_every, Some(10));
        c.validate().unwrap();
        let mut bad = c;
        bad.audit_every = Some(0);
        assert!(bad.validate().is_err());
    }
}
