//! Simulation driver: runs a full message-passing routing experiment and
//! gathers the paper's metrics.

use std::sync::Arc;

use locus_circuit::Circuit;
use locus_mesh::{Kernel, NetStats};
use locus_obs::{Event, EventKind, SharedSink, Sink};
use locus_router::locality::{locality_measure, LocalityMeasure};
use locus_router::router::{route_wire_scratch, PooledScratch};
use locus_router::{assign, CostArray, ProcId, QualityMetrics, RegionMap, Route, WorkStats};

use crate::config::MsgPassConfig;
use crate::node::{RecoveryStats, ReplicaSnapshot, RouterNode};
use crate::packet::PacketCounts;
use crate::reliable::ReliableStats;

/// Why a run failed to complete normally (see
/// [`MsgPassOutcome::degraded`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedKind {
    /// Every node went idle with work outstanding — typically a critical
    /// packet (a `WireGrant`, a blocking-request response, `Finished`,
    /// `Terminate`) was lost with no reliability layer to repair it, or
    /// the sender exhausted its retries.
    Deadlock,
    /// The kernel's event limit tripped before the protocol converged.
    EventLimit,
}

/// Watchdog report of a degraded run: what went wrong and which wires
/// the simulated machine never finished (they were routed locally by the
/// watchdog so the outcome still describes a complete circuit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedReason {
    /// What ended the run.
    pub kind: DegradedKind,
    /// Wires no processor had routed when the run stopped, in the order
    /// the watchdog recovered them.
    pub unrouted_wires: Vec<u32>,
}

/// Everything measured from one message-passing run — the columns of
/// Tables 1, 2, 4 and 6 plus diagnostics.
#[derive(Clone, Debug)]
pub struct MsgPassOutcome {
    /// Circuit height and occupancy factor.
    pub quality: QualityMetrics,
    /// Network statistics (packets, bytes, contention, completion time).
    pub net: NetStats,
    /// "Time (s)": simulated completion time.
    pub time_secs: f64,
    /// Virtual time at which the last processor completed its last
    /// routing work — the routing span. Everything between this and
    /// `time_secs` is cost-update exchange, checkpointing, and the
    /// termination protocol.
    pub routing_done_secs: f64,
    /// Per-processor routing-completion times (`routing_done_secs` is
    /// the maximum). The spread is the static assignment's load
    /// imbalance expressed in simulated time.
    pub routing_done_secs_by_proc: Vec<f64>,
    /// "MBytes Xfrd.": application payload megabytes moved.
    pub mbytes: f64,
    /// Final route of every wire.
    pub routes: Vec<Route>,
    /// Which processor routed each wire.
    pub proc_of_wire: Vec<ProcId>,
    /// Locality measure of the final solution (§5.3.3).
    pub locality: LocalityMeasure,
    /// Per-kind packet counts.
    pub packets: PacketCounts,
    /// Aggregate routing work.
    pub work: WorkStats,
    /// Occupancy factor accumulated in each iteration, summed across
    /// nodes (the last entry is the reported occupancy factor).
    pub occupancy_by_iteration: Vec<u64>,
    /// The true final cost-array state (rebuilt from the routes).
    pub cost: CostArray,
    /// Mean absolute per-cell divergence between node replicas and the
    /// true final cost array — how stale the views were at the end.
    pub replica_divergence: f64,
    /// Mid-run staleness snapshots from every node, in audit order
    /// (empty unless [`MsgPassConfig::audit_every`] was set).
    pub replica_audits: Vec<ReplicaSnapshot>,
    /// Load imbalance of the static assignment (max/mean).
    pub imbalance: f64,
    /// True if the simulation did not terminate cleanly.
    pub deadlocked: bool,
    /// `Some` when the run degraded (deadlock or event limit) and the
    /// watchdog completed it; `None` for a clean run.
    pub degraded: Option<DegradedReason>,
    /// Wires the watchdog routed locally because no processor finished
    /// them (`unrouted_wires.len()` of [`DegradedReason`]).
    pub watchdog_recoveries: u64,
    /// Aggregated reliable-transport counters across all nodes (all zero
    /// when the protocol is disabled).
    pub reliability: ReliableStats,
    /// Aggregated recovery counters across all nodes (all zero when
    /// [`MsgPassConfig::recovery`] is off).
    pub recovery: RecoveryStats,
}

/// Runs the message-passing LocusRoute on `circuit` under `config`.
///
/// # Panics
/// Panics if the configuration is invalid (see
/// [`MsgPassConfig::validate`]).
pub fn run_msgpass(circuit: &Circuit, config: MsgPassConfig) -> MsgPassOutcome {
    let mesh = config.mesh_config();
    run_msgpass_with_mesh(circuit, config, mesh)
}

/// Like [`run_msgpass`] but recording every routing and network event
/// into `sink`; read results back through the caller's clone of the
/// sink after the run.
///
/// # Panics
/// Panics if the configuration is invalid.
pub fn run_msgpass_observed(
    circuit: &Circuit,
    config: MsgPassConfig,
    sink: SharedSink,
) -> MsgPassOutcome {
    let mesh = config.mesh_config();
    run_inner(circuit, config, mesh, Some(sink))
}

/// Like [`run_msgpass`] but with an explicit mesh configuration —
/// used by ablations (e.g. disabling contention, alternate timing).
///
/// # Panics
/// Panics if the configuration is invalid or the mesh size does not
/// match `config.n_procs`.
pub fn run_msgpass_with_mesh(
    circuit: &Circuit,
    config: MsgPassConfig,
    mesh: locus_mesh::MeshConfig,
) -> MsgPassOutcome {
    run_inner(circuit, config, mesh, None)
}

/// Observed variant of [`run_msgpass_with_mesh`].
///
/// # Panics
/// Panics if the configuration is invalid or the mesh size does not
/// match `config.n_procs`.
pub fn run_msgpass_with_mesh_observed(
    circuit: &Circuit,
    config: MsgPassConfig,
    mesh: locus_mesh::MeshConfig,
    sink: SharedSink,
) -> MsgPassOutcome {
    run_inner(circuit, config, mesh, Some(sink))
}

fn run_inner(
    circuit: &Circuit,
    config: MsgPassConfig,
    mesh: locus_mesh::MeshConfig,
    sink: Option<SharedSink>,
) -> MsgPassOutcome {
    config.validate().expect("invalid message-passing configuration");
    assert_eq!(mesh.n_nodes(), config.n_procs, "mesh size must match processor count");
    let regions = Arc::new(RegionMap::new(circuit.channels, circuit.grids, config.n_procs));
    let dynamic = config.wire_source == crate::config::WireSource::Dynamic;
    // Under dynamic distribution the static assignment phase is skipped;
    // wires flow over the network at run time.
    let assignment = if dynamic {
        locus_router::Assignment {
            wires_per_proc: vec![Vec::new(); config.n_procs],
            proc_of_wire: vec![0; circuit.wire_count()],
        }
    } else {
        assign(circuit, &regions, config.assignment)
    };
    let imbalance = if dynamic { 1.0 } else { assignment.imbalance(circuit) };
    let circuit_arc = Arc::new(circuit.clone());

    let oracle = Arc::new(std::sync::Mutex::new(CostArray::new(circuit.channels, circuit.grids)));
    let truth_touched = config.audit_every.map(|_| {
        let n_cells = circuit.channels as usize * circuit.grids as usize;
        Arc::new(std::sync::Mutex::new(vec![0u64; n_cells]))
    });
    let nodes: Vec<RouterNode> = (0..config.n_procs)
        .map(|p| {
            let mut node = RouterNode::new(
                p,
                Arc::clone(&circuit_arc),
                Arc::clone(&regions),
                config,
                assignment.wires_per_proc[p].clone(),
                Arc::clone(&oracle),
            );
            if let Some(t) = &truth_touched {
                node = node.with_truth_touched(Arc::clone(t));
            }
            match &sink {
                Some(s) => node.with_sink(s.clone()),
                None => node,
            }
        })
        .collect();

    let mut kernel = Kernel::new(mesh, nodes);
    if let Some(s) = &sink {
        kernel = kernel.with_sink(Box::new(s.clone()));
    }
    let outcome = kernel.run();
    let deadlocked = outcome.stats.deadlocked;

    // Collect the final routes (the actual routed circuit).
    let mut routes: Vec<Option<Route>> = vec![None; circuit.wire_count()];
    let mut proc_of_wire = assignment.proc_of_wire.clone();
    let mut occupancy = 0u64;
    let mut occupancy_by_iteration: Vec<u64> = Vec::new();
    let mut work = WorkStats::default();
    let mut packets = PacketCounts::default();
    let mut replica_audits: Vec<ReplicaSnapshot> = Vec::new();
    let mut reliability = ReliableStats::default();
    let mut recovery = RecoveryStats::default();
    let mut routing_done_ns = 0u64;
    let mut routing_done_secs_by_proc = Vec::with_capacity(outcome.nodes.len());
    let recovery_on = config.recovery.is_some();
    for (p, node) in outcome.nodes.iter().enumerate() {
        reliability.merge(&node.reliable_stats());
        recovery.merge(&node.recovery_stats());
        routing_done_ns = routing_done_ns.max(node.routing_done_ns());
        routing_done_secs_by_proc.push(node.routing_done_ns() as f64 / 1e9);
        replica_audits.extend_from_slice(node.replica_audits());
        occupancy += node.occupancy_factor();
        let by_iter = node.occupancy_by_iteration();
        if occupancy_by_iteration.len() < by_iter.len() {
            occupancy_by_iteration.resize(by_iter.len(), 0);
        }
        for (total, o) in occupancy_by_iteration.iter_mut().zip(by_iter) {
            *total += o;
        }
        work += *node.work();
        packets.merge(node.sent_counts());
        // A crashed node's post-checkpoint routes died with it; under
        // recovery a wire may also legitimately have been routed twice
        // (its owner was falsely or belatedly declared dead and an
        // adopter re-routed it) — the first writer in node order wins,
        // deterministically. Without recovery, double-routing is a bug.
        let crashed = recovery_on && outcome.stats.crashed[p];
        for (w, r) in node.surviving_routes(crashed) {
            if routes[w].is_some() {
                debug_assert!(recovery_on, "wire {w} routed by two processors");
                recovery.duplicate_routes += 1;
                continue;
            }
            routes[w] = Some(r.clone());
            proc_of_wire[w] = p;
        }
    }
    replica_audits.sort_by_key(|s| (s.at_ns, s.proc));

    // Watchdog: a lost critical packet (without the reliability layer)
    // or an exhausted retry budget can strand wires unrouted. Rather
    // than panicking, complete the circuit locally — route the missing
    // wires against the state the machine did reach — and report the
    // degradation so callers and experiments can see exactly what broke.
    let mut unrouted: Vec<u32> = Vec::new();
    let mut landed = CostArray::new(circuit.channels, circuit.grids);
    for r in routes.iter().flatten() {
        landed.add_route(r);
    }
    let mut scratch = PooledScratch::take();
    let routes: Vec<Route> = routes
        .into_iter()
        .enumerate()
        .map(|(w, r)| match r {
            Some(r) => r,
            None => {
                unrouted.push(w as u32);
                let eval = route_wire_scratch(
                    &landed,
                    circuit.wire(w),
                    config.params.channel_overshoot,
                    &mut scratch,
                );
                landed.add_route(&eval.route);
                eval.route
            }
        })
        .collect();
    let watchdog_recoveries = unrouted.len() as u64;
    if let Some(s) = &sink {
        let at_ns = outcome.stats.completion.as_ns();
        let mut sink = s.lock();
        for &wire in &unrouted {
            sink.record(Event { at_ns, node: 0, kind: EventKind::WatchdogRecovery { wire } });
        }
    }
    let degraded = if deadlocked || !unrouted.is_empty() {
        let kind = if outcome.stats.event_limit_hit {
            DegradedKind::EventLimit
        } else {
            DegradedKind::Deadlock
        };
        Some(DegradedReason { kind, unrouted_wires: unrouted })
    } else {
        None
    };

    // The true final cost array is determined by the routes themselves.
    let mut truth = CostArray::new(circuit.channels, circuit.grids);
    for r in &routes {
        truth.add_route(r);
    }
    let quality = QualityMetrics::from_final_state(&truth, occupancy);

    // Replica staleness diagnostic.
    let n_cells = circuit.channels as u64 * circuit.grids as u64;
    let mut divergence = 0.0;
    for node in &outcome.nodes {
        let mut diff = 0u64;
        use locus_router::CostView;
        for c in 0..circuit.channels {
            for x in 0..circuit.grids {
                let cell = locus_circuit::GridCell::new(c, x);
                diff += (node.replica().cost_at(cell) as i64 - truth.cost_at(cell) as i64)
                    .unsigned_abs();
            }
        }
        divergence += diff as f64 / n_cells as f64;
    }
    divergence /= config.n_procs as f64;

    let locality = locality_measure(&routes, &proc_of_wire, &regions);

    MsgPassOutcome {
        quality,
        time_secs: outcome.stats.completion.as_secs_f64(),
        routing_done_secs: routing_done_ns as f64 / 1e9,
        routing_done_secs_by_proc,
        mbytes: outcome.stats.mbytes_transferred(),
        net: outcome.stats,
        routes,
        proc_of_wire,
        locality,
        packets,
        work,
        occupancy_by_iteration,
        cost: truth,
        replica_divergence: divergence,
        replica_audits,
        imbalance,
        deadlocked,
        degraded,
        watchdog_recoveries,
        reliability,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::schedule::UpdateSchedule;
    use locus_router::{AssignmentStrategy, RouterParams, SequentialRouter};

    fn small_config(n_procs: usize, schedule: UpdateSchedule) -> MsgPassConfig {
        MsgPassConfig::new(n_procs, schedule)
    }

    #[test]
    fn four_proc_sender_initiated_completes() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        assert!(!out.deadlocked, "simulation must terminate cleanly");
        assert_eq!(out.routes.len(), c.wire_count());
        assert!(out.quality.circuit_height > 0);
        assert!(out.time_secs > 0.0);
        assert!(out.mbytes > 0.0);
        assert!(out.packets.packets(PacketKind::SendRmtData) > 0);
        assert_eq!(out.packets.packets(PacketKind::ReqRmtData), 0);
    }

    #[test]
    fn four_proc_receiver_initiated_completes() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(4, UpdateSchedule::receiver_initiated(2, 5)));
        assert!(!out.deadlocked);
        assert!(out.packets.packets(PacketKind::ReqRmtData) > 0);
        assert!(out.packets.packets(PacketKind::ReqRmtDataResponse) > 0);
        assert_eq!(out.packets.packets(PacketKind::SendLocData), 0);
        assert_eq!(out.packets.packets(PacketKind::SendRmtData), 0);
    }

    #[test]
    fn blocking_receiver_completes_and_is_slower() {
        let c = locus_circuit::presets::small();
        let nb = run_msgpass(&c, small_config(4, UpdateSchedule::receiver_initiated(2, 3)));
        let bl =
            run_msgpass(&c, small_config(4, UpdateSchedule::receiver_initiated_blocking(2, 3)));
        assert!(!nb.deadlocked && !bl.deadlocked);
        assert!(
            bl.time_secs >= nb.time_secs,
            "blocking ({:.6}s) must not beat non-blocking ({:.6}s)",
            bl.time_secs,
            nb.time_secs
        );
    }

    #[test]
    fn single_processor_matches_sequential_router() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(1, UpdateSchedule::never()));
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(out.quality, seq.quality, "P=1 must reduce to the sequential algorithm");
        assert_eq!(out.routes, seq.routes);
        assert_eq!(out.net.packets, 0, "a single node never uses the network");
    }

    #[test]
    fn runs_are_deterministic() {
        let c = locus_circuit::presets::small();
        let cfg = small_config(4, UpdateSchedule::sender_initiated(2, 5));
        let a = run_msgpass(&c, cfg);
        let b = run_msgpass(&c, cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.net, b.net);
        assert_eq!(a.routes, b.routes);
    }

    #[test]
    fn frequent_updates_reduce_replica_divergence() {
        let c = locus_circuit::presets::small();
        let frequent = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(1, 1)));
        let never = run_msgpass(&c, small_config(4, UpdateSchedule::never()));
        assert!(
            frequent.replica_divergence < never.replica_divergence,
            "frequent updates {:.4} must track truth better than none {:.4}",
            frequent.replica_divergence,
            never.replica_divergence
        );
    }

    #[test]
    fn replica_audits_record_staleness() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(
            &c,
            small_config(4, UpdateSchedule::sender_initiated(2, 5)).with_audit_every(4),
        );
        assert!(!out.deadlocked);
        assert!(!out.replica_audits.is_empty(), "audit stamps must fire");
        // Audits arrive time-sorted and every node contributes.
        assert!(out.replica_audits.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let procs: std::collections::BTreeSet<_> =
            out.replica_audits.iter().map(|s| s.proc).collect();
        assert_eq!(procs.len(), 4);
        // With updates every few wires, some audit must catch divergence
        // on a contended circuit.
        assert!(out.replica_audits.iter().any(|s| s.diverged_cells > 0));
        for s in &out.replica_audits {
            assert!(s.total_abs_divergence >= s.max_abs_divergence as u64);
            assert!(s.diverged_cells == 0 || s.max_abs_divergence > 0);
        }
        // Auditing must not change the routed result.
        let plain = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        assert_eq!(out.quality, plain.quality);
        assert_eq!(out.routes, plain.routes);
    }

    #[test]
    fn no_audits_by_default() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        assert!(out.replica_audits.is_empty());
    }

    #[test]
    fn conservation_of_coverage() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
    }

    #[test]
    fn round_robin_assignment_works_end_to_end() {
        let c = locus_circuit::presets::small();
        let cfg = small_config(4, UpdateSchedule::sender_initiated(2, 5))
            .with_assignment(AssignmentStrategy::RoundRobin);
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked);
        // Round robin has worse locality than the default locality-based
        // assignment used by `small_config`.
        let local = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        assert!(out.locality.mean_hops >= local.locality.mean_hops);
    }

    #[test]
    fn wire_based_structure_completes_with_event_traffic_only() {
        use crate::config::PacketStructure;
        let c = locus_circuit::presets::small();
        let schedule = UpdateSchedule::sender_initiated(2, 5);
        let bbox = run_msgpass(&c, small_config(4, schedule));
        let wire =
            run_msgpass(&c, small_config(4, schedule).with_structure(PacketStructure::WireBased));
        assert!(!wire.deadlocked);
        assert_eq!(wire.routes.len(), c.wire_count());
        assert!(wire.packets.packets(PacketKind::WireData) > 0);
        assert_eq!(wire.packets.packets(PacketKind::SendLocData), 0);
        assert_eq!(wire.packets.packets(PacketKind::SendRmtData), 0);
        // Event packets are byte-compact (they carry coordinates, not
        // cell values) but flow even when rip-up and re-route cancel;
        // they also keep replicas usefully fresh.
        assert!(wire.net.payload_bytes > 0);
        assert!(
            wire.replica_divergence
                < run_msgpass(&c, small_config(4, UpdateSchedule::never())).replica_divergence,
            "wire events must inform replicas"
        );
        // Both schemes deliver comparable solution quality.
        let ratio = wire.quality.circuit_height as f64 / bbox.quality.circuit_height as f64;
        assert!((0.8..=1.25).contains(&ratio), "quality ratio {ratio}");
    }

    #[test]
    fn full_region_structure_completes_and_moves_more_bytes() {
        use crate::config::PacketStructure;
        let c = locus_circuit::presets::small();
        let schedule = UpdateSchedule::sender_initiated(2, 5);
        let bbox = run_msgpass(&c, small_config(4, schedule));
        let full =
            run_msgpass(&c, small_config(4, schedule).with_structure(PacketStructure::FullRegion));
        assert!(!full.deadlocked);
        assert!(
            full.net.payload_bytes > bbox.net.payload_bytes,
            "full-region {} must exceed bounding-box {}",
            full.net.payload_bytes,
            bbox.net.payload_bytes
        );
        // Same transaction kinds, bigger payloads.
        assert!(full.packets.packets(PacketKind::SendLocData) > 0);
    }

    #[test]
    fn structures_route_to_comparable_quality() {
        use crate::config::PacketStructure;
        let c = locus_circuit::presets::small();
        let schedule = UpdateSchedule::sender_initiated(2, 5);
        let heights: Vec<u64> =
            [PacketStructure::BoundingBox, PacketStructure::FullRegion, PacketStructure::WireBased]
                .into_iter()
                .map(|st| {
                    run_msgpass(&c, small_config(4, schedule).with_structure(st))
                        .quality
                        .circuit_height
                })
                .collect();
        let min = *heights.iter().min().unwrap() as f64;
        let max = *heights.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.2,
            "packet structure changes information timing, not semantics: {heights:?}"
        );
    }

    #[test]
    fn dynamic_distribution_routes_every_wire() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(
            &c,
            small_config(4, UpdateSchedule::sender_initiated(2, 5)).with_dynamic_wires(),
        );
        assert!(!out.deadlocked, "dynamic run must terminate");
        assert_eq!(out.routes.len(), c.wire_count());
        // Wire requests/grants are visible as control traffic beyond the
        // 6 termination packets.
        assert!(out.packets.packets(PacketKind::Control) > 6);
        // Every processor (including the master) routed something.
        let mut counts = [0usize; 4];
        for &p in &out.proc_of_wire {
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn dynamic_distribution_is_deterministic() {
        let c = locus_circuit::presets::small();
        let cfg = small_config(4, UpdateSchedule::sender_initiated(2, 5)).with_dynamic_wires();
        let a = run_msgpass(&c, cfg);
        let b = run_msgpass(&c, cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.proc_of_wire, b.proc_of_wire);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn dynamic_distribution_pays_request_latency() {
        // §4.2: a worker "may have to wait for an entire wire to be
        // routed before the wire assignment processor even retrieves the
        // task request" — dynamic distribution must not beat the static
        // assignment on time for the same single-iteration schedule.
        let c = locus_circuit::presets::small();
        let params = RouterParams::default().with_iterations(1);
        let stat = run_msgpass(
            &c,
            small_config(4, UpdateSchedule::sender_initiated(2, 5)).with_params(params),
        );
        let dynamic = run_msgpass(
            &c,
            small_config(4, UpdateSchedule::sender_initiated(2, 5)).with_dynamic_wires(),
        );
        assert!(
            dynamic.time_secs >= stat.time_secs * 0.9,
            "dynamic {:.4}s should not significantly beat static {:.4}s",
            dynamic.time_secs,
            stat.time_secs
        );
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_plan() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        let base = small_config(4, UpdateSchedule::sender_initiated(2, 5));
        let plan = FaultPlan::none().with_seed(99);
        assert!(!plan.has_node_faults(), "an empty plan carries no node faults");
        let plain = run_msgpass(&c, base);
        let with_plan = run_msgpass(&c, base.with_faults(plan));
        assert_eq!(plain.quality, with_plan.quality);
        assert_eq!(plain.net, with_plan.net);
        assert_eq!(plain.routes, with_plan.routes);
        assert_eq!(plain.packets, with_plan.packets);
        assert!(with_plan.degraded.is_none());
        assert_eq!(with_plan.reliability, ReliableStats::default());
        // Recovery off and no node faults: every recovery counter and
        // crash counter stays inert by construction.
        assert_eq!(with_plan.recovery, RecoveryStats::default());
        assert_eq!(with_plan.net.node_crashes, 0);
        assert_eq!(with_plan.net.node_restarts, 0);
        assert_eq!(with_plan.net.packets_lost_to_crash, 0);
    }

    #[test]
    fn reliable_run_survives_packet_loss() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        let cfg = small_config(4, UpdateSchedule::sender_initiated(2, 5))
            .with_faults(FaultPlan::uniform_loss(42, 1_000))
            .with_reliability();
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked, "reliability must repair 10% loss");
        assert!(out.degraded.is_none(), "{:?}", out.degraded);
        assert_eq!(out.routes.len(), c.wire_count());
        assert!(out.net.packets_dropped > 0, "the plan must actually fire");
        assert!(out.reliability.retransmits > 0, "drops must trigger retransmissions");
        assert!(out.reliability.acks_sent > 0);
        // Solution quality survives: the protocol changes timing, never
        // semantics.
        let clean = run_msgpass(&c, small_config(4, UpdateSchedule::sender_initiated(2, 5)));
        let ratio = out.quality.circuit_height as f64 / clean.quality.circuit_height as f64;
        assert!((0.8..=1.25).contains(&ratio), "quality ratio {ratio}");
    }

    #[test]
    fn faulted_reliable_runs_are_deterministic() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        let cfg = small_config(4, UpdateSchedule::receiver_initiated(2, 5))
            .with_faults(FaultPlan::uniform_loss(7, 800).with_duplicates(300, 20_000))
            .with_reliability();
        let a = run_msgpass(&c, cfg);
        let b = run_msgpass(&c, cfg);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.net, b.net);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.reliability, b.reliability);
    }

    #[test]
    fn unreliable_total_loss_degrades_but_watchdog_completes() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        // 100% loss with no reliability: blocking requesters wait forever
        // for responses that never come, and the termination protocol
        // never completes — the classic fault-induced deadlock.
        let cfg = small_config(4, UpdateSchedule::receiver_initiated_blocking(1, 1))
            .with_faults(FaultPlan::uniform_loss(1, 10_000));
        let out = run_msgpass(&c, cfg);
        assert!(out.deadlocked);
        let degraded = out.degraded.as_ref().expect("total loss must degrade the run");
        assert_eq!(degraded.kind, DegradedKind::Deadlock);
        assert_eq!(degraded.unrouted_wires.len() as u64, out.watchdog_recoveries);
        assert!(out.watchdog_recoveries > 0, "blocked nodes must strand wires");
        // The watchdog still delivered a complete circuit.
        assert_eq!(out.routes.len(), c.wire_count());
        assert!(out.quality.circuit_height > 0);
    }

    #[test]
    fn lost_termination_packets_deadlock_without_stranding_wires() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        // Updates never flow; the only traffic is Finished/Terminate, all
        // of it dropped. Routing completes locally on every node, so the
        // watchdog has nothing to recover — but the run still deadlocks.
        let cfg = small_config(4, UpdateSchedule::never())
            .with_faults(FaultPlan::uniform_loss(3, 10_000));
        let out = run_msgpass(&c, cfg);
        assert!(out.deadlocked);
        let degraded = out.degraded.as_ref().expect("deadlock must be reported");
        assert_eq!(degraded.kind, DegradedKind::Deadlock);
        assert!(degraded.unrouted_wires.is_empty(), "all wires routed before the hang");
        assert_eq!(out.watchdog_recoveries, 0);
        assert_eq!(out.routes.len(), c.wire_count());
    }

    #[test]
    fn reliability_repairs_lost_termination_packets() {
        use locus_mesh::FaultPlan;
        let c = locus_circuit::presets::small();
        // Same total-loss-of-control scenario, but scoped: drop only
        // traffic addressed to the coordinator (every Finished), with
        // reliability on. Retransmissions push the protocol through.
        let scope = locus_mesh::FaultScope { dst: Some(0), ..locus_mesh::FaultScope::all() };
        let cfg = small_config(4, UpdateSchedule::never())
            .with_faults(FaultPlan::uniform_loss(5, 5_000).with_scope(scope))
            .with_reliability();
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked, "retransmission must repair lost Finished packets");
        assert!(out.degraded.is_none());
        assert_eq!(out.routes.len(), c.wire_count());
    }

    // --- Recovery protocol (checkpoint / restart / reassign / failover) ---

    use crate::config::RecoveryConfig;

    /// Recovery knobs for the test circuit. The suspect window must
    /// comfortably exceed the longest single-step busy stretch (one
    /// wire's routing work, ~11 ms simulated here), or a node deep in
    /// computation reads as dead.
    fn fast_recovery() -> RecoveryConfig {
        RecoveryConfig {
            checkpoint_every: 4,
            heartbeat_ns: 20_000_000,
            suspect_after: 3,
            checkpoint_per_byte_ns: 1,
        }
    }

    fn recovery_config(n_procs: usize) -> MsgPassConfig {
        small_config(n_procs, UpdateSchedule::sender_initiated(2, 5))
            .with_reliability()
            .with_recovery_config(fast_recovery())
    }

    /// Completion time of a clean run under `cfg`, for placing crashes
    /// mid-run.
    fn clean_completion_ns(cfg: MsgPassConfig) -> u64 {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked);
        out.net.completion.as_ns()
    }

    #[test]
    fn recovery_on_clean_run_checkpoints_and_terminates() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, recovery_config(4));
        assert!(!out.deadlocked);
        assert!(out.degraded.is_none(), "{:?}", out.degraded);
        assert_eq!(out.watchdog_recoveries, 0);
        assert!(out.recovery.checkpoints_taken > 0, "periodic checkpoints must fire");
        assert!(out.recovery.checkpoint_bytes > 0);
        assert!(out.recovery.heartbeats_sent > 0, "heartbeats must flow");
        assert_eq!(out.recovery.nodes_declared_dead, 0, "no one died");
        assert_eq!(out.recovery.wires_reassigned, 0);
        assert_eq!(out.recovery.coordinator_failovers, 0);
        // Checkpoint traffic rides the Recovery packet kind.
        assert!(out.packets.packets(PacketKind::Recovery) > 0);
        let again = run_msgpass(&c, recovery_config(4));
        assert_eq!(out.routes, again.routes);
        assert_eq!(out.net, again.net);
        assert_eq!(out.recovery, again.recovery);
    }

    #[test]
    fn worker_crash_restart_rolls_back_and_completes() {
        use locus_mesh::{FaultPlan, NodeFault};
        let c = locus_circuit::presets::small();
        let mid = clean_completion_ns(recovery_config(4)) / 2;
        // Short downtime: the worker restarts inside the suspect window,
        // rolls back to its checkpoint, and quietly re-routes — no
        // death sentence, no reassignment.
        let cfg = recovery_config(4).with_faults(
            FaultPlan::none()
                .with_node_fault(2, NodeFault::CrashRestart { at_ns: mid, downtime_ns: 50_000 }),
        );
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked, "restart recovery must terminate");
        assert!(out.degraded.is_none(), "{:?}", out.degraded);
        assert_eq!(out.watchdog_recoveries, 0, "the protocol, not the watchdog, recovers");
        assert_eq!(out.net.node_crashes, 1);
        assert_eq!(out.net.node_restarts, 1);
        assert_eq!(out.recovery.rollbacks, 1, "post-checkpoint work must roll back");
        assert!(out.recovery.wires_rolled_back > 0);
        assert_eq!(out.recovery.nodes_declared_dead, 0, "downtime < suspect window");
        assert_eq!(out.routes.len(), c.wire_count());
        // Bounded re-work: only wires past the last checkpoint re-route.
        assert!(out.recovery.wires_rolled_back < fast_recovery().checkpoint_every as u64 + 1);
        let again = run_msgpass(&c, cfg);
        assert_eq!(out.routes, again.routes);
        assert_eq!(out.net, again.net);
        assert_eq!(out.recovery, again.recovery);
    }

    #[test]
    fn dead_worker_wires_are_reassigned_to_live_nodes() {
        use locus_mesh::{FaultPlan, NodeFault};
        let c = locus_circuit::presets::small();
        let mid = clean_completion_ns(recovery_config(4)) / 2;
        let cfg = recovery_config(4)
            .with_faults(FaultPlan::none().with_node_fault(3, NodeFault::Crash { at_ns: mid }));
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked, "reassignment must terminate the run");
        assert!(out.degraded.is_none(), "{:?}", out.degraded);
        assert_eq!(out.watchdog_recoveries, 0, "the protocol, not the watchdog, recovers");
        assert_eq!(out.net.node_crashes, 1);
        assert_eq!(out.recovery.nodes_declared_dead, 1);
        assert!(out.recovery.wires_reassigned > 0, "orphans must be redistributed");
        assert_eq!(out.recovery.wires_adopted, out.recovery.wires_reassigned);
        // Every wire is routed, and the dead node owns none of the
        // post-checkpoint ones.
        assert_eq!(out.routes.len(), c.wire_count());
        let routed_by_dead = out.proc_of_wire.iter().filter(|&&p| p == 3).count();
        assert!(
            routed_by_dead as u32 <= out.recovery.checkpoints_taken as u32 * 4 + 4,
            "only the dead node's durable prefix may stand"
        );
        let again = run_msgpass(&c, cfg);
        assert_eq!(out.routes, again.routes);
        assert_eq!(out.net, again.net);
        assert_eq!(out.recovery, again.recovery);
    }

    #[test]
    fn coordinator_crash_fails_over_to_next_rank() {
        use locus_mesh::{FaultPlan, NodeFault};
        let c = locus_circuit::presets::small();
        let mid = clean_completion_ns(recovery_config(4)) / 2;
        let cfg = recovery_config(4)
            .with_faults(FaultPlan::none().with_node_fault(0, NodeFault::Crash { at_ns: mid }));
        let out = run_msgpass(&c, cfg);
        assert!(!out.deadlocked, "failover must terminate the run");
        assert!(out.degraded.is_none(), "{:?}", out.degraded);
        assert_eq!(out.watchdog_recoveries, 0);
        assert_eq!(out.recovery.coordinator_failovers, 1, "rank 1 takes over exactly once");
        assert!(out.recovery.wires_reassigned > 0, "the dead coordinator's wires move");
        assert_eq!(out.routes.len(), c.wire_count());
        let again = run_msgpass(&c, cfg);
        assert_eq!(out.routes, again.routes);
        assert_eq!(out.net, again.net);
        assert_eq!(out.recovery, again.recovery);
    }

    #[test]
    fn never_schedule_sends_only_control_traffic() {
        let c = locus_circuit::presets::small();
        let out = run_msgpass(&c, small_config(4, UpdateSchedule::never()));
        assert_eq!(
            out.packets.total_packets(),
            out.packets.packets(PacketKind::Control),
            "only Finished/Terminate expected"
        );
        // 3 Finished + 3 Terminate on 4 processors.
        assert_eq!(out.packets.packets(PacketKind::Control), 6);
    }
}
