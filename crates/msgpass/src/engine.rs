//! [`RoutingEngine`] adapter for the message-passing simulator.

use locus_circuit::Circuit;
use locus_mesh::FaultPlan;
use locus_router::engine::{EngineCtx, EngineRun, RoutingEngine};
use locus_router::router::RouteOutcome;
use locus_router::RouterParams;

use crate::config::MsgPassConfig;
use crate::schedule::UpdateSchedule;
use crate::sim::{run_msgpass, run_msgpass_observed};

/// The discrete-event message-passing router as an engine. Two stock
/// variants mirror the paper's headline schedules; any other
/// [`UpdateSchedule`] can be wrapped with [`MsgPassEngine::with_schedule`].
pub struct MsgPassEngine {
    id: &'static str,
    schedule: UpdateSchedule,
    faults: FaultPlan,
}

impl MsgPassEngine {
    /// Sender-initiated updates at the paper's headline (2,10) rates
    /// (`id = "msgpass-sender"`).
    pub fn sender() -> Self {
        MsgPassEngine {
            id: "msgpass-sender",
            schedule: UpdateSchedule::sender_initiated(2, 10),
            faults: FaultPlan::none(),
        }
    }

    /// Receiver-initiated updates at the paper's headline (1,5) rates
    /// (`id = "msgpass-receiver"`).
    pub fn receiver() -> Self {
        MsgPassEngine {
            id: "msgpass-receiver",
            schedule: UpdateSchedule::receiver_initiated(1, 5),
            faults: FaultPlan::none(),
        }
    }

    /// An engine running an arbitrary update schedule under `id`.
    pub fn with_schedule(id: &'static str, schedule: UpdateSchedule) -> Self {
        MsgPassEngine { id, schedule, faults: FaultPlan::none() }
    }

    /// Returns `self` running on a faulty mesh under `plan`, with the
    /// end-to-end reliability protocol enabled to compensate.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

impl RoutingEngine for MsgPassEngine {
    fn id(&self) -> &'static str {
        self.id
    }

    fn route(&self, circuit: &Circuit, params: &RouterParams, ctx: &EngineCtx) -> EngineRun {
        let mut config = MsgPassConfig::new(ctx.n_procs, self.schedule).with_params(*params);
        if !self.faults.is_idle() {
            config = config.with_faults(self.faults).with_reliability();
        }
        let out = match &ctx.sink {
            Some(sink) => run_msgpass_observed(circuit, config, sink.clone()),
            None => run_msgpass(circuit, config),
        };
        EngineRun {
            outcome: RouteOutcome {
                quality: out.quality,
                work: out.work,
                routes: out.routes,
                cost: out.cost,
                occupancy_by_iteration: out.occupancy_by_iteration,
            },
            mbytes: Some(out.mbytes),
            time_secs: Some(out.time_secs),
            degraded: out.degraded.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;

    #[test]
    fn sender_engine_matches_direct_run() {
        let c = presets::small();
        let params = RouterParams::default();
        let run = MsgPassEngine::sender().route(&c, &params, &EngineCtx::new(4));
        let direct = run_msgpass(
            &c,
            MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10)).with_params(params),
        );
        assert_eq!(run.outcome.quality, direct.quality);
        assert_eq!(run.outcome.routes, direct.routes);
        assert_eq!(run.mbytes, Some(direct.mbytes));
        assert_eq!(run.time_secs, Some(direct.time_secs));
    }

    #[test]
    fn receiver_engine_reports_traffic() {
        let c = presets::tiny();
        let params = RouterParams::default();
        let run = MsgPassEngine::receiver().route(&c, &params, &EngineCtx::new(2));
        assert_eq!(run.outcome.routes.len(), c.wire_count());
        assert!(run.mbytes.expect("payload traffic") > 0.0);
    }
}
