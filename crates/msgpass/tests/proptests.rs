//! Property-based tests for the message-passing building blocks.

use locus_circuit::{presets, GridCell, Rect};
use locus_mesh::{FaultPlan, NodeFault};
use locus_msgpass::{
    run_msgpass, DeltaArray, MsgPassConfig, MsgPassOutcome, Packet, RecoveryConfig, UpdateSchedule,
};
use proptest::prelude::*;

const CHANNELS: u16 = 8;
const GRIDS: u16 = 32;

fn arb_cell() -> impl Strategy<Value = GridCell> {
    (0u16..CHANNELS, 0u16..GRIDS).prop_map(|(c, x)| GridCell::new(c, x))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u16..CHANNELS, 0u16..CHANNELS, 0u16..GRIDS, 0u16..GRIDS)
        .prop_map(|(c1, c2, x1, x2)| Rect::new(c1.min(c2), c1.max(c2), x1.min(x2), x1.max(x2)))
}

proptest! {
    /// Recording a set of changes and their exact negations leaves the
    /// delta array clean — the §5.2 cancellation mechanism.
    #[test]
    fn delta_cancellation(ops in proptest::collection::vec((arb_cell(), 1i16..4), 0..60)) {
        let mut d = DeltaArray::new(CHANNELS, GRIDS);
        for &(cell, v) in &ops {
            d.record(cell, v);
        }
        for &(cell, v) in &ops {
            d.record(cell, -v);
        }
        prop_assert!(d.is_zero());
    }

    /// `changes_in` returns the tight bounding box: every nonzero cell in
    /// the scan rect is inside it, and its edges touch nonzero cells.
    #[test]
    fn changes_bbox_is_tight(
        ops in proptest::collection::vec((arb_cell(), -3i16..=3), 1..40),
        scan in arb_rect(),
    ) {
        let mut d = DeltaArray::new(CHANNELS, GRIDS);
        for &(cell, v) in &ops {
            d.record(cell, v);
        }
        match d.changes_in(scan) {
            None => {
                for cell in scan.cells() {
                    prop_assert_eq!(d.get(cell), 0);
                }
            }
            Some(bbox) => {
                prop_assert!(scan.intersection(&bbox) == Some(bbox), "bbox inside scan");
                for cell in scan.cells() {
                    if d.get(cell) != 0 {
                        prop_assert!(bbox.contains(cell), "{cell} outside bbox {bbox}");
                    }
                }
                // Each boundary row/column holds at least one change.
                let row_has = |c: u16| (bbox.x_lo..=bbox.x_hi)
                    .any(|x| d.get(GridCell::new(c, x)) != 0);
                let col_has = |x: u16| (bbox.c_lo..=bbox.c_hi)
                    .any(|c| d.get(GridCell::new(c, x)) != 0);
                prop_assert!(row_has(bbox.c_lo) && row_has(bbox.c_hi));
                prop_assert!(col_has(bbox.x_lo) && col_has(bbox.x_hi));
            }
        }
    }

    /// Extract-and-clear returns exactly the recorded values and zeroes
    /// the rectangle while leaving everything outside untouched.
    #[test]
    fn extract_and_clear_is_local(
        ops in proptest::collection::vec((arb_cell(), -3i16..=3), 0..40),
        rect in arb_rect(),
    ) {
        let mut d = DeltaArray::new(CHANNELS, GRIDS);
        for &(cell, v) in &ops {
            d.record(cell, v);
        }
        let before: Vec<i16> = Rect::new(0, CHANNELS - 1, 0, GRIDS - 1)
            .cells()
            .map(|c| d.get(c))
            .collect();
        let vals = d.extract_and_clear(rect);
        prop_assert_eq!(vals.len() as u64, rect.area());
        for (i, cell) in Rect::new(0, CHANNELS - 1, 0, GRIDS - 1).cells().enumerate() {
            if rect.contains(cell) {
                prop_assert_eq!(d.get(cell), 0);
            } else {
                prop_assert_eq!(d.get(cell), before[i]);
            }
        }
    }

    /// Packet payload accounting: data packets grow linearly with their
    /// payload and never undercut the header.
    #[test]
    fn packet_sizes_are_consistent(rect in arb_rect()) {
        let n = rect.area() as usize;
        let loc = Packet::LocData { rect, values: vec![0; n], response: false };
        let rmt = Packet::RmtData { rect, deltas: vec![0; n], response: false };
        prop_assert_eq!(loc.payload_bytes(), 9 + 2 * n as u32);
        prop_assert_eq!(rmt.payload_bytes(), 9 + n as u32);
        let req = Packet::ReqRmtData { rect };
        prop_assert!(req.payload_bytes() < loc.payload_bytes() || n == 0);
    }

    /// Schedule validation accepts all nonzero frequencies and rejects
    /// any zero.
    #[test]
    fn schedule_validation(a in 0u32..4, b in 0u32..4, c in 0u32..4, d in 0u32..4) {
        let schedule = UpdateSchedule {
            send_loc_data: (a > 0).then_some(a),
            send_rmt_data: (b > 0).then_some(b),
            req_loc_data: (c > 0).then_some(c),
            req_rmt_data: (d > 0).then_some(d),
            blocking: false,
        };
        prop_assert!(schedule.validate().is_ok());
        let zeroed = UpdateSchedule { send_loc_data: Some(0), ..schedule };
        prop_assert!(zeroed.validate().is_err());
    }
}

// Full-simulation properties run far fewer cases: each case routes the
// `small` preset end to end on a four-node mesh.
proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Resilience: under any seed and any uniform loss rate up to 20%,
    /// the reliability protocol terminates cleanly (no deadlock, no
    /// degraded outcome) and routes every wire of the circuit.
    #[test]
    fn reliable_delivery_survives_any_loss_seed(
        seed in any::<u64>(),
        drop_bp in 0u32..=2000,
        sender in any::<bool>(),
    ) {
        let c = presets::small();
        let schedule = if sender {
            UpdateSchedule::sender_initiated(2, 10)
        } else {
            UpdateSchedule::receiver_initiated(1, 5)
        };
        let config = MsgPassConfig::new(4, schedule)
            .with_faults(FaultPlan::uniform_loss(seed, drop_bp))
            .with_reliability();
        let out = run_msgpass(&c, config);
        prop_assert!(!out.deadlocked, "seed {seed} drop {drop_bp}bp deadlocked");
        prop_assert!(out.degraded.is_none(), "degraded: {:?}", out.degraded);
        prop_assert_eq!(out.routes.len(), c.wire_count());
    }

    /// A zero-rate fault plan is inert: whatever the seed, the run is
    /// byte-identical to one with no plan installed at all.
    #[test]
    fn zero_rate_fault_plan_is_inert(seed in any::<u64>()) {
        let c = presets::small();
        let schedule = UpdateSchedule::sender_initiated(2, 10);
        let clean = run_msgpass(&c, MsgPassConfig::new(4, schedule));
        let planned = run_msgpass(
            &c,
            MsgPassConfig::new(4, schedule).with_faults(FaultPlan::uniform_loss(seed, 0)),
        );
        prop_assert_eq!(clean.quality, planned.quality);
        prop_assert_eq!(clean.routes, planned.routes);
        prop_assert_eq!(clean.net.packets, planned.net.packets);
        prop_assert_eq!(clean.net.payload_bytes, planned.net.payload_bytes);
        prop_assert_eq!(planned.net.faults_injected(), 0);
    }
}

/// Four-node recovery configuration for the invariant proptests. The
/// suspect window (3 × 20 ms) comfortably exceeds the longest
/// single-step busy stretch on the `small` preset (~11 ms of routing
/// work per wire).
fn recovery_config() -> MsgPassConfig {
    MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
        .with_reliability()
        .with_recovery_config(RecoveryConfig {
            checkpoint_every: 4,
            heartbeat_ns: 20_000_000,
            suspect_after: 3,
            checkpoint_per_byte_ns: 1,
        })
}

/// Bitwise-equality fingerprint of a recovery run.
fn same_outcome(a: &MsgPassOutcome, b: &MsgPassOutcome) -> bool {
    a.routes == b.routes
        && a.quality == b.quality
        && a.recovery == b.recovery
        && a.time_secs.to_bits() == b.time_secs.to_bits()
        && a.net.packets == b.net.packets
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Recovery invariant, single fault: whatever node crashes at
    /// whatever point — fail-stop or fail-recover — the run terminates
    /// cleanly with every wire routed by the recovery protocol itself
    /// (no watchdog), and a repeat execution is bitwise identical.
    #[test]
    fn single_crash_recovers_every_wire(
        node in 0u32..4,
        at_ns in 1_000_000u64..400_000_000,
        restarts in any::<bool>(),
        downtime_ns in 1_000_000u64..200_000_000,
    ) {
        let c = presets::small();
        let fault = if restarts {
            NodeFault::CrashRestart { at_ns, downtime_ns }
        } else {
            NodeFault::Crash { at_ns }
        };
        let config = recovery_config()
            .with_faults(FaultPlan::none().with_node_fault(node, fault));
        let out = run_msgpass(&c, config);
        prop_assert!(!out.deadlocked, "node {node} at {at_ns} deadlocked");
        prop_assert!(out.degraded.is_none(), "degraded: {:?}", out.degraded);
        prop_assert_eq!(out.watchdog_recoveries, 0);
        prop_assert_eq!(out.routes.len(), c.wire_count());
        let again = run_msgpass(&c, config);
        prop_assert!(same_outcome(&out, &again), "repeat diverged");
    }

    /// Recovery invariant, double fault: two crashes on distinct nodes
    /// at arbitrary times still terminate with every wire present, and
    /// the run stays bitwise repeatable. (Adversarial timings may leave
    /// a short stranded tail to the watchdog; single faults never do.)
    #[test]
    fn double_crash_terminates_deterministically(
        a_at in 1_000_000u64..400_000_000,
        b_at in 1_000_000u64..400_000_000,
        pair_idx in 0usize..4,
        restart_b in any::<bool>(),
    ) {
        const PAIRS: [(u32, u32); 4] = [(0, 1), (0, 3), (1, 2), (2, 3)];
        let c = presets::small();
        let (a, b) = PAIRS[pair_idx];
        let b_fault = if restart_b {
            NodeFault::CrashRestart { at_ns: b_at, downtime_ns: 80_000_000 }
        } else {
            NodeFault::Crash { at_ns: b_at }
        };
        let plan = FaultPlan::none()
            .with_node_fault(a, NodeFault::Crash { at_ns: a_at })
            .with_node_fault(b, b_fault);
        let config = recovery_config().with_faults(plan);
        let out = run_msgpass(&c, config);
        prop_assert!(!out.deadlocked, "{a}@{a_at} + {b}@{b_at} deadlocked");
        prop_assert_eq!(out.routes.len(), c.wire_count());
        let again = run_msgpass(&c, config);
        prop_assert!(same_outcome(&out, &again), "repeat diverged");
    }
}
