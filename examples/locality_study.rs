//! The locality trade-off in wire assignment (paper §4.2, §5.3).
//!
//! The scenario: wires can be statically assigned to the processor that
//! owns the region under their leftmost pin (great locality, risky load
//! balance) or spread round-robin (perfect balance, no locality).
//! `ThresholdCost` interpolates: short wires follow locality, long wires
//! balance load. This example measures quality, traffic, time, load
//! imbalance and the §5.3.3 locality measure across the spectrum.
//!
//! ```text
//! cargo run --release --example locality_study
//! ```

use locusroute::prelude::*;

fn main() {
    let circuit = locusroute::circuit::presets::bnr_e();
    let n_procs = 16;

    let strategies: Vec<(&str, AssignmentStrategy)> = vec![
        ("round robin", AssignmentStrategy::RoundRobin),
        ("ThresholdCost = 10", AssignmentStrategy::Locality { threshold_cost: Some(10) }),
        ("ThresholdCost = 30", AssignmentStrategy::Locality { threshold_cost: Some(30) }),
        ("ThresholdCost = 1000", AssignmentStrategy::Locality { threshold_cost: Some(1000) }),
        ("ThresholdCost = infinity", AssignmentStrategy::Locality { threshold_cost: None }),
    ];

    println!(
        "{:<26} {:>7} {:>8} {:>9} {:>10} {:>10}",
        "assignment", "height", "MBytes", "time (s)", "imbalance", "mean hops"
    );
    for (label, strategy) in strategies {
        let cfg = MsgPassConfig::new(n_procs, UpdateSchedule::sender_initiated(2, 10))
            .with_assignment(strategy);
        let out = run_msgpass(&circuit, cfg);
        assert!(!out.deadlocked);
        println!(
            "{:<26} {:>7} {:>8.3} {:>9.3} {:>10.3} {:>10.2}",
            label,
            out.quality.circuit_height,
            out.mbytes,
            out.time_secs,
            out.imbalance,
            out.locality.mean_hops
        );
    }

    println!(
        "\nThe fully local assignment minimizes hops and traffic but its load\n\
         imbalance stretches the execution time; round robin balances perfectly\n\
         but routes blind. The best *time* sits at an intermediate threshold —\n\
         exactly the paper's §5.3.3 observation (their best was ThresholdCost=30)."
    );
}
