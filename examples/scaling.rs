//! Scaling study: what happens as processors are added (paper §5.4).
//!
//! Sweeps the processor count for the message-passing router and the
//! shared-memory emulator, reporting quality degradation, traffic and
//! speedup — Table 6 plus the shared-memory side the paper describes in
//! prose.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use locusroute::prelude::*;

fn main() {
    let circuit = locusroute::circuit::presets::bnr_e();
    let procs = [1usize, 2, 4, 9, 16];

    println!("message passing (sender initiated, rmt=2 loc=10):");
    println!(
        "  {:>5} {:>7} {:>10} {:>8} {:>9} {:>8}",
        "procs", "height", "occupancy", "MBytes", "time (s)", "speedup"
    );
    let mut t2 = None;
    for &p in &procs {
        let out =
            run_msgpass(&circuit, MsgPassConfig::new(p, UpdateSchedule::sender_initiated(2, 10)));
        assert!(!out.deadlocked);
        if p == 2 {
            t2 = Some(out.time_secs);
        }
        let speedup = t2.map(|t| t / out.time_secs * 2.0);
        println!(
            "  {:>5} {:>7} {:>10} {:>8.3} {:>9.3} {:>8}",
            p,
            out.quality.circuit_height,
            out.quality.occupancy_factor,
            out.mbytes,
            out.time_secs,
            speedup.map_or("-".to_string(), |s| format!("{s:.1}"))
        );
    }

    println!("\nshared memory (emulated, dynamic distributed loop):");
    println!("  {:>5} {:>7} {:>10} {:>9}", "procs", "height", "occupancy", "time (s)");
    for &p in &procs {
        let out = ShmemEmulator::new(&circuit, ShmemConfig::new(p)).run();
        println!(
            "  {:>5} {:>7} {:>10} {:>9.3}",
            p, out.quality.circuit_height, out.quality.occupancy_factor, out.time_secs
        );
    }

    println!(
        "\nBoth paradigms lose a few percent of quality on the way to 16\n\
         processors — more wires are in flight simultaneously, so each routing\n\
         decision sees a less accurate cost array (§5.4). Message-passing\n\
         traffic peaks near 4 processors and then *falls*: smaller owned\n\
         regions make the change bounding boxes tighter, not communication\n\
         cheaper."
    );
}
