//! One circuit, two paradigms, one event vocabulary.
//!
//! Routes a small circuit with the message-passing implementation and
//! with the shared-memory emulator, recording both runs through the same
//! observability sink, then prints the two ASCII per-node timelines side
//! by side with the captured counters. The same events can be exported
//! as Chrome trace JSON (see `locus-experiments --trace-out`).
//!
//! ```text
//! cargo run --release --example observability
//! ```

use locusroute::msgpass::{run_msgpass_observed, MsgPassConfig, UpdateSchedule};
use locusroute::obs::{export, names, SharedSink};
use locusroute::shmem::{ShmemConfig, ShmemEmulator};

fn main() {
    let circuit = locusroute::circuit::presets::small();
    let n_procs = 4;
    let width = 64;

    // Message passing: events carry simulated mesh-network time.
    let mp_sink = SharedSink::new();
    let cfg = MsgPassConfig::new(n_procs, UpdateSchedule::sender_initiated(2, 5));
    let mp = run_msgpass_observed(&circuit, cfg, mp_sink.clone());
    assert!(!mp.deadlocked);

    // Shared memory: events carry the emulator's logical clocks.
    let shm_sink = SharedSink::new();
    let shm = ShmemEmulator::new(&circuit, ShmemConfig::new(n_procs))
        .with_sink(Box::new(shm_sink.clone()))
        .run();

    println!("=== message passing ({n_procs} procs, sender-initiated) ===");
    println!("{}", export::ascii_timeline(&mp_sink.snapshot_events(), width));
    let m = mp_sink.metrics_snapshot();
    println!(
        "quality: height {}  |  traffic: {} packets, {} payload bytes, {} rip-ups\n",
        mp.quality.circuit_height,
        m.counter(names::PACKETS_SENT),
        m.counter(names::BYTES_SENT),
        m.counter(names::RIP_UPS),
    );

    println!("=== shared memory (emulated, {n_procs} procs) ===");
    println!("{}", export::ascii_timeline(&shm_sink.snapshot_events(), width));
    let s = shm_sink.metrics_snapshot();
    println!(
        "quality: height {}  |  {} wires routed, {} rip-ups, no packets — \
         consistency comes from the shared array",
        shm.quality.circuit_height,
        s.counter(names::WIRES_ROUTED),
        s.counter(names::RIP_UPS),
    );
}
