//! Quickstart: route a small circuit three ways and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use locusroute::prelude::*;
use locusroute::router::render::render_cost_array;

fn main() {
    // A tiny 4-channel x 24-grid synthetic circuit with 12 wires.
    let circuit = locusroute::circuit::presets::tiny();
    println!(
        "circuit {:?}: {} channels x {} grids, {} wires\n",
        circuit.name,
        circuit.channels,
        circuit.grids,
        circuit.wire_count()
    );

    // 1. The sequential reference router.
    let seq = SequentialRouter::new(&circuit, RouterParams::default()).run();
    println!(
        "sequential:      height={:<4} occupancy={}",
        seq.quality.circuit_height, seq.quality.occupancy_factor
    );

    // 2. The shared-memory implementation, emulated on 4 processors.
    let shm = ShmemEmulator::new(&circuit, ShmemConfig::new(4)).run();
    println!(
        "shared memory:   height={:<4} occupancy={}  (4 procs, {:.4}s modelled)",
        shm.quality.circuit_height, shm.quality.occupancy_factor, shm.time_secs
    );

    // 3. The message-passing implementation on a simulated 2x2 mesh with
    //    sender-initiated updates.
    let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 5));
    let msg = run_msgpass(&circuit, cfg);
    println!(
        "message passing: height={:<4} occupancy={}  ({:.4} MB moved, {:.4}s modelled)",
        msg.quality.circuit_height, msg.quality.occupancy_factor, msg.mbytes, msg.time_secs
    );

    // Show the final cost array with wire 0's route highlighted (the
    // paper's Figure 1 view).
    println!("\nfinal cost array (sequential), wire 0 highlighted:");
    print!("{}", render_cost_array(&seq.cost, Some(&seq.routes[0])));
}
