//! Routing an externally supplied circuit via the text format.
//!
//! The scenario: you have your own standard-cell netlist. Serialize it in
//! the `locus-circuit` text format (or build it programmatically), parse
//! it, route it, and inspect per-channel track usage.
//!
//! ```text
//! cargo run --release --example custom_circuit
//! ```

use locusroute::circuit::format;
use locusroute::prelude::*;

/// A hand-written 6-wire circuit in the interchange format.
const CIRCUIT_TEXT: &str = "\
# a hand-written demo circuit: 3 channels x 30 grids
circuit handmade channels 3 grids 30
wire 0 : (0,2) (2,27)
wire 1 : (1,5) (1,24)
wire 2 : (0,8) (1,8) (2,12)
wire 3 : (2,1) (2,9)
wire 4 : (0,14) (2,18) (1,29)
wire 5 : (1,3) (0,22)
";

fn main() {
    let circuit = format::from_text(CIRCUIT_TEXT).expect("valid circuit text");
    println!(
        "parsed {:?}: {} wires on {} channels x {} grids",
        circuit.name,
        circuit.wire_count(),
        circuit.channels,
        circuit.grids
    );

    let out = SequentialRouter::new(&circuit, RouterParams::default().with_iterations(3)).run();
    println!(
        "routed: height={} occupancy={}",
        out.quality.circuit_height, out.quality.occupancy_factor
    );

    println!("\nper-channel routing tracks:");
    for c in 0..circuit.channels {
        println!("  channel {c}: {} tracks", out.cost.channel_tracks(c));
    }

    println!("\nper-wire routes:");
    for (wire, route) in circuit.wires.iter().zip(&out.routes) {
        println!(
            "  wire {}: {} segments, {} cells, bbox {}",
            wire.id,
            route.segments().len(),
            route.len(),
            route.bounding_box()
        );
    }

    // Round-trip: emit the circuit back out.
    let emitted = format::to_text(&circuit);
    assert_eq!(format::from_text(&emitted).unwrap().wires, circuit.wires);
    println!("\nround-tripped through the text format: {} bytes", emitted.len());
}
