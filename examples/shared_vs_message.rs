//! The paper's headline comparison (§5.2): one algorithm, two paradigms.
//!
//! Routes the bnrE-shaped benchmark with the shared-memory implementation
//! (consistency from a Write-Back-with-Invalidate coherence protocol,
//! traffic measured from a Tango-style reference trace) and with the
//! message-passing implementation (consistency from explicit update
//! packets), then prints quality vs communication for both — plus a real
//! multithreaded run to show the shared-memory router actually runs in
//! parallel on today's hardware.
//!
//! ```text
//! cargo run --release --example shared_vs_message
//! ```

use locusroute::prelude::*;

fn main() {
    let circuit = locusroute::circuit::presets::bnr_e();
    let n_procs = 16;

    // Shared memory: deterministic emulation + coherence traffic.
    let shm = ShmemEmulator::new(&circuit, ShmemConfig::new(n_procs).with_trace()).run();
    let trace = shm.trace.as_ref().expect("trace enabled");
    println!(
        "shared memory reference trace: {} refs ({} writes)",
        trace.len(),
        trace.write_count()
    );
    println!("\nbus traffic under WBI coherence (Table 3 sweep):");
    for (line, stats) in traffic_by_line_size(trace, &[4, 8, 16, 32]) {
        println!(
            "  {line:>2}-byte lines: {:>7.3} MB  ({:.0}% write-caused)",
            stats.mbytes(),
            stats.write_fraction() * 100.0
        );
    }
    let shm_mb = traffic_by_line_size(trace, &[8])[0].1.mbytes();

    // Message passing: two representative schedules.
    let sender =
        run_msgpass(&circuit, MsgPassConfig::new(n_procs, UpdateSchedule::sender_initiated(2, 10)));
    let receiver = run_msgpass(
        &circuit,
        MsgPassConfig::new(n_procs, UpdateSchedule::receiver_initiated(1, 5)),
    );

    println!("\nquality vs communication ({} processors):", n_procs);
    println!("  {:<34} {:>7} {:>9}", "approach", "height", "MBytes");
    println!(
        "  {:<34} {:>7} {:>9.3}",
        "shared memory (8B lines)", shm.quality.circuit_height, shm_mb
    );
    println!(
        "  {:<34} {:>7} {:>9.3}",
        "message passing, sender initiated", sender.quality.circuit_height, sender.mbytes
    );
    println!(
        "  {:<34} {:>7} {:>9.3}",
        "message passing, receiver initiated", receiver.quality.circuit_height, receiver.mbytes
    );

    // And a genuine parallel run on real threads.
    println!("\nreal threads (wall clock, nondeterministic):");
    for threads in [1usize, 2, 4] {
        let out = ThreadedRouter::new(&circuit, ShmemConfig::new(threads)).run();
        println!(
            "  {threads} thread(s): height={:<4} wall={:?}",
            out.quality.circuit_height, out.wall
        );
    }

    println!(
        "\nThe paper's conclusion reproduces: the shared-memory version routes\n\
         best but moves by far the most bytes; explicit updates cut traffic by\n\
         1–2 orders of magnitude at a 5–15% quality cost (§5.2, §6)."
    );
}
