//! Tuning the update strategy of the message-passing router.
//!
//! The scenario: you are porting LocusRoute to a message-passing machine
//! and must pick how replicas of the cost array are kept consistent.
//! This example sweeps the main options of paper §4.3 on the bnrE-shaped
//! benchmark and prints the quality/traffic/time trade-off so you can
//! pick a point on the curve.
//!
//! ```text
//! cargo run --release --example update_strategies
//! ```

use locusroute::prelude::*;

fn main() {
    let circuit = locusroute::circuit::presets::bnr_e();
    let n_procs = 16;

    let strategies: Vec<(&str, UpdateSchedule)> = vec![
        ("sender, eager   (rmt=2, loc=1)", UpdateSchedule::sender_initiated(2, 1)),
        ("sender, relaxed (rmt=2, loc=10)", UpdateSchedule::sender_initiated(2, 10)),
        ("sender, lazy    (rmt=10, loc=20)", UpdateSchedule::sender_initiated(10, 20)),
        ("receiver, eager (loc=1, rmt=5)", UpdateSchedule::receiver_initiated(1, 5)),
        ("receiver, lazy  (loc=10, rmt=30)", UpdateSchedule::receiver_initiated(10, 30)),
        ("receiver, blocking (loc=1, rmt=5)", UpdateSchedule::receiver_initiated_blocking(1, 5)),
        ("mixed (paper §5.1.3)", UpdateSchedule::mixed_paper()),
        ("no updates at all", UpdateSchedule::never()),
    ];

    println!(
        "{:<36} {:>7} {:>10} {:>9} {:>9} {:>9}",
        "strategy", "height", "occupancy", "MBytes", "time (s)", "packets"
    );
    for (label, schedule) in strategies {
        let out = run_msgpass(&circuit, MsgPassConfig::new(n_procs, schedule));
        assert!(!out.deadlocked);
        println!(
            "{:<36} {:>7} {:>10} {:>9.3} {:>9.3} {:>9}",
            label,
            out.quality.circuit_height,
            out.quality.occupancy_factor,
            out.mbytes,
            out.time_secs,
            out.packets.total_packets()
        );
    }

    println!(
        "\nReading the table: eager sender-initiated schedules buy the best circuit\n\
         height at the highest traffic and time; receiver-initiated schedules cut\n\
         traffic by an order of magnitude at a few percent quality cost; blocking\n\
         trades time for nothing (paper §5.1.3); and no updates at all leaves every\n\
         processor blind to its neighbours' congestion."
    );
}
